"""Hierarchical-THC(k) algorithms (Section 5, Algorithm 2).

* :class:`RecursiveHTHC` — the deterministic O(k·n^{1/k})-distance solver
  of Proposition 5.12 (volume Θ̃(n), tight by Proposition 5.20).
* :class:`WaypointHTHC` — Proposition 5.14's randomized modification:
  recursive calls happen only at *way-points*, sampled from each node's
  private randomness with probability p = c·log n / n^{1/k}, giving volume
  O(n^{1/k} · logᴼ⁽ᵏ⁾ n) with high probability.
* :class:`HierarchicalFullGather` — the generic O(n) volume solver.

Implementation notes relative to the paper's pseudocode (Algorithm 2):

* Recursive values are memoized per execution; determinism (or the shared
  tapes) guarantees a node's own execution returns the same value other
  executions compute for it — the consistency the proof's "all nodes
  between u and w store the same values" argument needs.
* Lines 19–21 of the pseudocode return X when the descent pointer never
  moved (``u = v``).  That happens exactly when v is a level-ℓ leaf whose
  hung component declined (a colored RC would have exited at line 7), and
  outputting X there would violate condition 5(a) at level k.  We instead
  treat the leaf as the terminal of its run — output χin(v) when the run
  is short, D otherwise — which is what validity conditions 2/4/5(b)
  require and what the surrounding executions (line 26) assume.
* Truncated pointer walks automatically land in the dist > 2n^{1/k}
  branch (a truncated pointer has travelled 2n^{1/k}+1 steps), so
  neighboring executions always agree on which branch they are in.
"""

from __future__ import annotations

import functools

import math
from typing import Dict, Optional

from repro.graphs.labelings import BLUE, DECLINE, EXEMPT, RED
from repro.graphs.tree_structure import (
    backbone_next,
    backbone_prev,
    is_level_leaf,
    is_level_root,
    level_of,
    right_child_node,
)
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.randomness import RandomnessModel
from repro.model.views import ProbeTopology
from repro.algorithms.generic import FullGatherAlgorithm
from repro.problems.hierarchical_thc import reference_solution
from repro.registry import register_algorithm

_COLORED_OR_EXEMPT = (RED, BLUE, EXEMPT)
_WAYPOINT_BITS = 24


class THCSolverBase(ProbeAlgorithm):
    """Shared machinery for the hierarchical and hybrid THC solvers.

    Subclasses provide level-1 handling and the exemption predicate; the
    upper-level logic (shallow components, exemption, the u/w pointer
    walk) is Algorithm 2 verbatim.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    # -- hooks ----------------------------------------------------------
    def _solve_level_one(self, view, topo, v):
        raise NotImplementedError

    def _rc_supports_exemption(self, rc_value, lvl: int) -> bool:
        """Definition 5.5 condition 4(b)/5(a): RC committed to a color."""
        return rc_value in _COLORED_OR_EXEMPT

    def _recursion_allowed(self, view: ProbeView, node: int) -> bool:
        """Whether ``node`` may recurse into its hung component."""
        return True

    # -- engine ----------------------------------------------------------
    def run(self, view: ProbeView):
        self._memo: Dict[int, object] = {}
        topo = ProbeTopology(view)
        lvl = level_of(topo, view.start, cap=self.k)
        if lvl > self.k:
            return EXEMPT
        return self._solve(view, topo, view.start, lvl)

    def fallback(self, view: ProbeView):
        return EXEMPT

    def threshold(self, view: ProbeView) -> int:
        """2·n^{1/k}, the shallow/deep boundary of Definition 5.10."""
        return max(2, math.ceil(2 * view.n ** (1.0 / self.k)))

    def _solve(self, view, topo, v, lvl):
        if v in self._memo:
            return self._memo[v]
        if lvl <= 1:
            value = self._solve_level_one(view, topo, v)
        else:
            value = self._solve_upper(view, topo, v, lvl)
        self._memo[v] = value
        return value

    # -- Algorithm 2, lines 1-9 ------------------------------------------
    def _shallow_value(self, view, topo, v) -> Optional[object]:
        """Lines 1–4: if the component is shallow, its unanimous color."""
        thr = self.threshold(view)
        seg = _walk_backbone(topo, v, self.k, limit=thr + 2)
        if seg is None:
            return None
        nodes, is_cycle = seg
        if len(nodes) > thr:
            return None
        anchor = nodes[-1] if not is_cycle else min(nodes)
        return view.info(anchor).label.color

    def _rc_value(self, view, topo, v, lvl):
        child = right_child_node(topo, v)
        if child is None:
            return DECLINE
        return self._solve(view, topo, child, lvl - 1)

    def _solve_upper(self, view, topo, v, lvl):
        shallow = self._shallow_value(view, topo, v)
        if shallow is not None:
            return shallow
        # Line 7: exempt if the hung component committed to a color.
        if self._recursion_allowed(view, v):
            if self._rc_supports_exemption(
                self._rc_value(view, topo, v, lvl), lvl
            ):
                return EXEMPT
        # Lines 10-18: pointer walk.  u descends, w ascends, both skipping
        # nodes whose hung component declines (or is unprobed: non-waypoint).
        thr = self.threshold(view)

        def rc_declines(x) -> bool:
            # Note: the "u not a level-ℓ leaf" / "w not a level-ℓ root"
            # stopping rules (lines 12/15) are separate guards below; this
            # predicate is purely about the hung component's verdict.
            if not self._recursion_allowed(view, x):
                return True  # Prop 5.14: non-way-points read as D
            return not self._rc_supports_exemption(
                self._rc_value(view, topo, x, lvl), lvl
            )

        u, w = v, v
        du = dw = 0
        u_done = w_done = False
        for _ in range(thr + 1):
            if not u_done:
                if not is_level_leaf(topo, u) and rc_declines(u):
                    nxt = backbone_next(topo, u, cap=self.k)
                    if nxt is None:
                        u_done = True
                    else:
                        u, du = nxt, du + 1
                else:
                    u_done = True
            if not w_done:
                if not is_level_root(topo, w) and rc_declines(w):
                    prev = backbone_prev(topo, w, cap=self.k)
                    if prev is None:
                        w_done = True
                    else:
                        w, dw = prev, dw + 1
                else:
                    w_done = True

        if u == v:
            # v is a level-ℓ leaf whose hung component declined (see the
            # module docstring): v terminates its own run.
            return view.start_info.label.color if dw <= thr else DECLINE
        if du + dw <= thr:
            # Line 23's condition matches u's own line-7 exit exactly, so
            # u's execution returns X precisely when the run assumes it.
            u_exempt = self._recursion_allowed(view, u) and (
                self._rc_supports_exemption(
                    self._rc_value(view, topo, u, lvl), lvl
                )
            )
            if u_exempt:
                # Line 24: u outputs X; the run takes χin(P(u)).
                parent = backbone_prev(topo, u, cap=self.k)
                anchor = parent if parent is not None else u
                return view.info(anchor).label.color
            # Line 26: u is a leaf whose component declined; the run takes
            # χin(u) (u itself outputs the same by the u == v case above).
            return view.info(u).label.color
        return DECLINE


def _walk_backbone(topo, v, cap, limit):
    """The maximal backbone through ``v`` if reachable within ``limit``
    steps per direction; None if truncated (hence deep).

    Returns ``(nodes, is_cycle)`` with path nodes ordered root→leaf.
    """
    forward = [v]
    seen = {v}
    current = v
    for _ in range(limit):
        nxt = backbone_next(topo, current, cap)
        if nxt is None:
            break
        if nxt in seen:
            return forward, True  # closed the unique cycle
        forward.append(nxt)
        seen.add(nxt)
        current = nxt
    else:
        return None  # truncated forward: deep
    backward = []
    current = v
    for _ in range(limit):
        prev = backbone_prev(topo, current, cap)
        if prev is None:
            break
        if prev in seen:
            return forward, True
        backward.append(prev)
        seen.add(prev)
        current = prev
    else:
        return None  # truncated backward: deep
    return list(reversed(backward)) + forward, False


@register_algorithm(
    "hierarchical-thc(2)/recursive",
    problem="hierarchical-thc(2)",
    defaults={"k": 2},
)
class RecursiveHTHC(THCSolverBase):
    """Algorithm 2: deterministic, distance O(k·n^{1/k})."""

    def __init__(self, k: int) -> None:
        super().__init__(k)
        self.name = f"hierarchical-thc({k})/recursive"

    def _solve_level_one(self, view, topo, v):
        shallow = self._shallow_value(view, topo, v)
        if shallow is not None:
            return shallow
        return DECLINE  # line 5-6: deep level-1 components decline


@register_algorithm(
    "hierarchical-thc(2)/waypoint",
    problem="hierarchical-thc(2)",
    defaults={"k": 2},
    seed=3,
)
class WaypointHTHC(RecursiveHTHC):
    """Proposition 5.14: recursion gated on randomly sampled way-points.

    Each node is a way-point with probability p = c·log₂ n / n^{1/k},
    decided by its own private tape (so every execution agrees).  The
    paper's analysis (Lemmas 5.16/5.18) wants c ≥ 3; ``factor`` scales p
    for the ablation bench E10.
    """

    randomness = RandomnessModel.PRIVATE

    def __init__(self, k: int, factor: float = 1.0, c: float = 3.0) -> None:
        super().__init__(k)
        self.name = f"hierarchical-thc({k})/waypoint"
        self.factor = factor
        self.c = c

    def _waypoint_probability(self, view: ProbeView) -> float:
        n = max(2, view.n)
        p = self.c * self.factor * math.log2(n) / (n ** (1.0 / self.k))
        return min(1.0, p)

    def _recursion_allowed(self, view: ProbeView, node: int) -> bool:
        p = self._waypoint_probability(view)
        x = 0
        for i in range(_WAYPOINT_BITS):
            x = (x << 1) | view.random_bit(node, i)
        return x < p * (1 << _WAYPOINT_BITS)


@register_algorithm(
    "hierarchical-thc(2)/full-gather",
    problem="hierarchical-thc(2)",
    defaults={"k": 2},
)
class HierarchicalFullGather(FullGatherAlgorithm):
    """Volume O(n): gather everything and run the global reference."""

    def __init__(self, k: int) -> None:
        super().__init__(
            functools.partial(reference_solution, k=k),
            name=f"hierarchical-thc({k})/full-gather",
        )
