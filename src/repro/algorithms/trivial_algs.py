"""Θ(1) solvers for the class-A specimen problems (Section 1.2).

The LCLs with distance complexity Θ(1) are exactly those with volume
complexity Θ(1); these two algorithms realize that collapse on the
:mod:`repro.problems.classic.trivial` problems — each answers from the
initiating node's free self-inspection, volume exactly 1.
"""

from __future__ import annotations

from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.registry import register_algorithm


@register_algorithm("constant/echo-ok", problem="constant")
class ConstantOutput(ProbeAlgorithm):
    """Output the fixed label "ok" with zero queries."""

    name = "constant/echo-ok"

    def run(self, view: ProbeView):
        return "ok"


@register_algorithm("degree-parity/local", problem="degree-parity")
class DegreeParityLocal(ProbeAlgorithm):
    """Output deg(v) mod 2 from the free self-inspection."""

    name = "degree-parity/local"

    def run(self, view: ProbeView):
        return view.start_info.degree % 2
