"""HH-THC(k, ℓ) algorithms (Section 6.1): dispatch on the selector bit.

Theorem 6.5's upper bounds are maxima of the per-population bounds, so
every solver simply runs the right sub-solver for its node's population:

* :class:`HHDistanceSolver` — distance Θ(n^{1/ℓ}): RecursiveHTHC(ℓ) on the
  bit-0 population, the O(log n) hybrid distance solver on bit-1.
* :class:`HHWaypointSolver` — randomized volume Θ̃(n^{1/k}): waypoint
  solvers on both populations (the hierarchical part costs Θ̃(n^{1/ℓ}) ≤
  Θ̃(n^{1/k}) since k ≤ ℓ).
* :class:`HHFullGather` — volume O(n).
"""

from __future__ import annotations

import functools

from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.randomness import RandomnessModel
from repro.algorithms.generic import FullGatherAlgorithm
from repro.algorithms.hierarchical_algs import RecursiveHTHC, WaypointHTHC
from repro.algorithms.hybrid_algs import (
    HybridDistanceSolver,
    HybridWaypointSolver,
)
from repro.problems.hh_thc import reference_solution as hh_reference
from repro.registry import register_algorithm


class _HHDispatch(ProbeAlgorithm):
    """Run one of two sub-solvers depending on the node's input bit."""

    def __init__(self, bit0: ProbeAlgorithm, bit1: ProbeAlgorithm, name: str) -> None:
        self._bit0 = bit0
        self._bit1 = bit1
        self.name = name

    def run(self, view: ProbeView):
        bit = view.start_info.label.bit
        solver = self._bit0 if bit == 0 else self._bit1
        return solver.run(view)

    def fallback(self, view: ProbeView):
        bit = view.start_info.label.bit
        solver = self._bit0 if bit == 0 else self._bit1
        return solver.fallback(view)


@register_algorithm(
    "hh-thc(2,3)/distance",
    problem="hh-thc(2,3)",
    defaults={"k": 2, "ell": 3},
)
class HHDistanceSolver(_HHDispatch):
    """Distance Θ(n^{1/ℓ}) (dominated by the hierarchical population)."""

    def __init__(self, k: int, ell: int) -> None:
        super().__init__(
            RecursiveHTHC(ell),
            HybridDistanceSolver(k),
            name=f"hh-thc({k},{ell})/distance",
        )


@register_algorithm(
    "hh-thc(2,3)/waypoint",
    problem="hh-thc(2,3)",
    defaults={"k": 2, "ell": 3},
    seed=2,
)
class HHWaypointSolver(_HHDispatch):
    """Randomized volume Θ̃(n^{1/k}) (dominated by the hybrid population)."""

    randomness = RandomnessModel.PRIVATE

    def __init__(self, k: int, ell: int, factor: float = 1.0) -> None:
        super().__init__(
            WaypointHTHC(ell, factor=factor),
            HybridWaypointSolver(k, factor=factor),
            name=f"hh-thc({k},{ell})/waypoint",
        )


@register_algorithm(
    "hh-thc(2,3)/full-gather",
    problem="hh-thc(2,3)",
    defaults={"k": 2, "ell": 3},
)
class HHFullGather(FullGatherAlgorithm):
    """Volume O(n)."""

    def __init__(self, k: int, ell: int) -> None:
        super().__init__(
            functools.partial(hh_reference, k=k, ell=ell),
            name=f"hh-thc({k},{ell})/full-gather",
        )
