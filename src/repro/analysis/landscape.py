"""Assembling the Figure 1/2/3 landscape from measured sweeps.

Each figure is a deterministic-vs-randomized scatter over the complexity
axis {1, log* n, log log n, log n, ..., n^{1/2}, n}.  We reproduce them as
labeled point lists plus an ASCII rendering, since the shapes (which
problem sits on which rung, where the classes collapse) are the claims —
not the pixels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

# The axis of Figures 1-3, coarse to fine.
AXIS: List[str] = [
    "1",
    "log* n",
    "log log n",
    "log n",
    "n^{1/4}",
    "n^{1/3}",
    "n^{1/2}",
    "n",
]

_AXIS_ALIASES = {
    "log^2 n": "log n",
    "n^{1/2} log n": "n^{1/2}",
    "n/log n": "n",
}


def axis_position(growth_class: str) -> int:
    """Index of a fitted growth class on the figure axis."""
    name = _AXIS_ALIASES.get(growth_class, growth_class)
    try:
        return AXIS.index(name)
    except ValueError:
        raise KeyError(f"growth class {growth_class!r} not on the axis")


@dataclass
class LandscapePoint:
    """One problem's position: (deterministic, randomized) classes."""

    problem: str
    deterministic: str
    randomized: str
    note: str = ""

    @property
    def coordinates(self) -> Tuple[int, int]:
        return axis_position(self.deterministic), axis_position(self.randomized)


def render_landscape(
    points: Sequence[LandscapePoint], title: str
) -> str:
    """ASCII scatter: deterministic on x, randomized on y (as in Fig 1/2)."""
    grid: Dict[Tuple[int, int], List[str]] = {}
    markers: List[str] = []
    for idx, point in enumerate(points):
        marker = chr(ord("a") + idx)
        markers.append(
            f"  {marker}: {point.problem} "
            f"(D={point.deterministic}, R={point.randomized})"
            + (f" — {point.note}" if point.note else "")
        )
        grid.setdefault(point.coordinates, []).append(marker)
    width = max(len(label) for label in AXIS)
    lines = [title, ""]
    for y in range(len(AXIS) - 1, -1, -1):
        row_label = AXIS[y].rjust(width)
        cells = []
        for x in range(len(AXIS)):
            cell = "".join(grid.get((x, y), [])) or "."
            cells.append(cell.center(5))
        lines.append(f"{row_label} |{''.join(cells)}")
    lines.append(" " * width + " +" + "-" * (5 * len(AXIS)))
    lines.append(
        " " * width + "  " + "".join(label.center(5) for label in AXIS)
    )
    lines.append("")
    lines.extend(markers)
    return "\n".join(lines)


@dataclass
class ContributionLine:
    """A Figure 3 line: volume endpoints → distance endpoints."""

    problem: str
    r_vol: str
    d_vol: str
    r_dist: str
    d_dist: str

    def render(self) -> str:
        return (
            f"{self.problem:<24} VOL (R={self.r_vol:<12} D={self.d_vol:<12}) "
            f"→ DIST (R={self.r_dist:<12} D={self.d_dist:<12})"
        )


def render_contributions(lines: Sequence[ContributionLine]) -> str:
    header = (
        "Figure 3: each construction's volume endpoints vs distance "
        "endpoints"
    )
    return "\n".join([header, ""] + [line.render() for line in lines])
