"""Turning measured (n, cost) sweeps into complexity-class verdicts.

The paper's results are Θ(·) statements over the growth classes visible in
Figures 1–3: 1, log* n, log log n, log n, n^{1/k}, n/log n, n.  Given a
sweep of measurements we fit each candidate shape ``cost ≈ c·f(n)`` by
least squares on the log scale (the optimal multiplier is the geometric
mean of the ratios) and report the candidate with the smallest residual.

This is deliberately simple, transparent model selection — the benches
print the residual table so a reader can see *why* a verdict was reached,
and the paper-claimed class alongside the measured one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def log_star(n: float) -> float:
    """The iterated logarithm (base 2), floored at 1 for fitting."""
    count = 0
    x = float(n)
    while x > 1.0:
        x = math.log2(x)
        count += 1
    return max(1.0, float(count))


def _safe_log(x: float) -> float:
    return math.log(max(x, 1e-9))


GROWTH_CLASSES: Dict[str, Callable[[float], float]] = {
    "1": lambda n: 1.0,
    "log* n": log_star,
    "log log n": lambda n: max(1.0, math.log2(max(2.0, math.log2(max(2.0, n))))),
    "log n": lambda n: math.log2(max(2.0, n)),
    "log^2 n": lambda n: math.log2(max(2.0, n)) ** 2,
    "n^{1/4}": lambda n: n ** 0.25,
    "n^{1/3}": lambda n: n ** (1.0 / 3.0),
    "n^{1/2}": lambda n: n ** 0.5,
    "n^{1/2} log n": lambda n: (n ** 0.5) * math.log2(max(2.0, n)),
    "n/log n": lambda n: n / math.log2(max(2.0, n)),
    "n": lambda n: float(n),
}


@dataclass
class FitResult:
    """Outcome of fitting one sweep against all growth classes."""

    best: str
    multiplier: float
    residuals: Dict[str, float] = field(default_factory=dict)

    def residual_table(self) -> List[Tuple[str, float]]:
        return sorted(self.residuals.items(), key=lambda kv: kv[1])


def fit_growth(
    ns: Sequence[float],
    costs: Sequence[float],
    candidates: Optional[Sequence[str]] = None,
) -> FitResult:
    """Select the growth class minimizing log-scale least squares."""
    if len(ns) != len(costs):
        raise ValueError("ns and costs must have equal length")
    if len(ns) < 2:
        raise ValueError("need at least two measurements")
    names = list(candidates) if candidates else list(GROWTH_CLASSES)
    residuals: Dict[str, float] = {}
    multipliers: Dict[str, float] = {}
    for name in names:
        f = GROWTH_CLASSES[name]
        log_ratios = [_safe_log(c) - _safe_log(f(n)) for n, c in zip(ns, costs)]
        mean = sum(log_ratios) / len(log_ratios)
        residuals[name] = sum((r - mean) ** 2 for r in log_ratios)
        multipliers[name] = math.exp(mean)
    best = min(residuals, key=residuals.get)
    return FitResult(
        best=best, multiplier=multipliers[best], residuals=residuals
    )


def fit_exponent(ns: Sequence[float], costs: Sequence[float]) -> float:
    """Least-squares slope of log cost vs log n: the α of Θ̃(n^α).

    Polylog factors bias α slightly upward at small n; benches report it
    next to the claimed 1/k so the shape comparison stays honest.
    """
    if len(ns) < 2:
        raise ValueError("need at least two measurements")
    xs = [_safe_log(n) for n in ns]
    ys = [_safe_log(c) for c in costs]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    if den == 0:
        raise ValueError("all ns equal")
    return num / den


@dataclass
class SweepMeasurement:
    """One measured complexity curve, ready for reporting."""

    label: str
    ns: List[int]
    costs: List[float]
    claimed: str

    def fitted(self, candidates: Optional[Sequence[str]] = None) -> FitResult:
        return fit_growth(self.ns, self.costs, candidates)

    def exponent(self) -> float:
        return fit_exponent(self.ns, self.costs)


def format_sweep_row(measure: SweepMeasurement, fit: FitResult) -> str:
    """One printable row: claimed vs fitted, with the raw series."""
    series = ", ".join(
        f"{n}:{c:.0f}" for n, c in zip(measure.ns, measure.costs)
    )
    return (
        f"{measure.label:<34} claimed {measure.claimed:<12} "
        f"fitted {fit.best:<12} (x{fit.multiplier:.2f})  [{series}]"
    )
