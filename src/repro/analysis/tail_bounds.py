"""Tail bounds used by the paper's randomized analyses (Section 2.6).

Lemma 2.11 (Chernoff) and Lemma 2.12 (negative binomial): the bound
``Pr(N > c·k/p) ≤ exp(−k(c−1)²/2c)`` drives the O(log n) w.h.p. analysis
of ``RWtoLeaf`` (the walk crosses a "good" halving edge with probability
≥ 1/2 per step, so 16·log n steps suffice with probability 1 − n^{-3}).

The functions are plain closed forms; tests validate them against Monte
Carlo estimates, which doubles as a statistical self-check of the tape
machinery.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


def chernoff_upper(mu: float, delta: float) -> float:
    """Lemma 2.11, eq. (3): Pr(Y ≥ (1+δ)μ) ≤ exp(−μδ²/3), 0 < δ < 1."""
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if mu <= 0:
        raise ValueError("mu must be positive")
    return math.exp(-mu * delta * delta / 3.0)


def chernoff_lower(mu: float, delta: float) -> float:
    """Lemma 2.11, eq. (4): Pr(Y ≤ (1−δ)μ) ≤ exp(−μδ²/2), 0 < δ < 1."""
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if mu <= 0:
        raise ValueError("mu must be positive")
    return math.exp(-mu * delta * delta / 2.0)


def negative_binomial_tail(k: int, p: float, c: float) -> float:
    """Lemma 2.12: Pr(N > c·k/p) ≤ exp(−k(c−1)²/2c) for N ~ N(k, p)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    if c <= 1:
        raise ValueError("c must exceed 1")
    return math.exp(-k * (c - 1) ** 2 / (2 * c))


def rw_to_leaf_failure_bound(n: int, cap_factor: float = 16.0) -> float:
    """Prop 3.10's per-node failure bound at ``cap_factor``·log n steps.

    The proof couples the walk to N ~ N(log n, 1/2) and applies Lemma
    2.12 with c·k/p = cap_factor·log n, i.e. c = cap_factor/2.
    """
    if n < 4:
        return 1.0
    k = math.log2(n)
    c = cap_factor / 2.0
    if c <= 1:
        return 1.0
    return 2.0 * negative_binomial_tail(max(1, int(k)), 0.5, c)


@dataclass
class MonteCarloCheck:
    """Empirical tail frequency vs. the analytic bound."""

    empirical: float
    bound: float

    @property
    def holds(self) -> bool:
        # allow slack for Monte Carlo noise on tiny probabilities
        return self.empirical <= self.bound + 0.05


def monte_carlo_binomial_tail(
    m: int, p: float, threshold: float, trials: int, seed: int = 0,
    direction: str = "upper",
) -> float:
    """Empirical Pr(Σ Bernoulli(p) over m ≷ threshold) by simulation."""
    rnd = random.Random(seed)
    hits = 0
    for _ in range(trials):
        total = sum(1 for _ in range(m) if rnd.random() < p)
        if direction == "upper" and total >= threshold:
            hits += 1
        if direction == "lower" and total <= threshold:
            hits += 1
    return hits / trials


def monte_carlo_negative_binomial_tail(
    k: int, p: float, cutoff: float, trials: int, seed: int = 0
) -> float:
    """Empirical Pr(N > cutoff) for N ~ N(k, p) by simulation."""
    rnd = random.Random(seed)
    hits = 0
    for _ in range(trials):
        successes = 0
        draws = 0
        while successes < k:
            draws += 1
            if rnd.random() < p:
                successes += 1
            if draws > cutoff:
                hits += 1
                break
    return hits / trials
