"""The on-disk content-addressed instance corpus.

Layout of a corpus directory::

    <root>/
      manifest.json          # index: entry key -> provenance + content hash
      .lock                  # flock target serializing manifest updates
      entries/<key>.json     # one canonical-JSON entry file per key

Durability and concurrency follow the :mod:`repro.faults.journal`
discipline: every file lands via :func:`~repro.faults.journal.
atomic_write_text` (temp file + fsync + rename), so readers and crashed
writers never observe a torn file, and the manifest's read-modify-write
runs under an exclusive ``flock`` so two processes adding entries
concurrently cannot lose each other's index rows.  Entry files
themselves need no lock: a key is a pure function of ``(family, param,
seed, format version)`` and generation is deterministic, so two writers
racing on one key write byte-identical files and either rename wins.
"""

from __future__ import annotations

import fcntl
import io
import json
import os
import tarfile
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.corpus.format import (
    FORMAT_VERSION,
    canonical_json,
    content_hash,
    decode_value,
    entry_key,
    entry_payload,
    payload_to_instance,
)
from repro.faults.journal import atomic_write_text
from repro.graphs.labelings import Instance


class CorpusError(RuntimeError):
    """A corpus operation failed (conflict, corruption, bad archive)."""


@dataclass(frozen=True)
class CorpusEntry:
    """One manifest row: provenance plus the stored file's content hash."""

    key: str
    family: str
    param_repr: str
    seed: int
    n: int
    name: str
    content_hash: str
    created_at: str

    def to_row(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "param_repr": self.param_repr,
            "seed": self.seed,
            "n": self.n,
            "name": self.name,
            "content_hash": self.content_hash,
            "created_at": self.created_at,
        }

    @classmethod
    def from_row(cls, key: str, row: Dict[str, object]) -> "CorpusEntry":
        return cls(
            key=key,
            family=str(row["family"]),
            param_repr=str(row["param_repr"]),
            seed=int(row["seed"]),
            n=int(row["n"]),
            name=str(row["name"]),
            content_hash=str(row["content_hash"]),
            created_at=str(row["created_at"]),
        )


class InstanceCorpus:
    """A content-addressed corpus of generated instances under one root."""

    MANIFEST = "manifest.json"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- paths ---------------------------------------------------------
    @property
    def entries_dir(self) -> Path:
        return self.root / "entries"

    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    def entry_path(self, key: str) -> Path:
        return self.entries_dir / f"{key}.json"

    # -- manifest ------------------------------------------------------
    def _read_manifest(self) -> Dict[str, Dict[str, object]]:
        if not self.manifest_path.exists():
            return {}
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CorpusError(
                f"corpus manifest {self.manifest_path} is unreadable: {exc}"
            ) from exc
        if payload.get("format") != FORMAT_VERSION:
            raise CorpusError(
                f"corpus at {self.root} has format "
                f"{payload.get('format')!r}; this build reads "
                f"{FORMAT_VERSION!r}"
            )
        return payload["entries"]

    def _write_manifest(self, entries: Dict[str, Dict[str, object]]) -> None:
        payload = {"format": FORMAT_VERSION, "entries": entries}
        atomic_write_text(
            self.manifest_path, json.dumps(payload, sort_keys=True, indent=1)
        )

    def _locked_manifest_update(
        self, mutate: Callable[[Dict[str, Dict[str, object]]], bool]
    ) -> bool:
        """Run one manifest read-modify-write under the corpus lock.

        ``mutate`` edits the entries dict in place and returns whether
        anything changed.  The lock is held across the *whole* RMW —
        reading, mutating, and the atomic replace — which is what makes
        concurrent ``add`` calls from separate processes lose nothing.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / ".lock", "w") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            entries = self._read_manifest()
            changed = mutate(entries)
            if changed:
                self._write_manifest(entries)
            return changed

    # -- write path ----------------------------------------------------
    def add(
        self, family: str, param, seed: int, instance: Instance
    ) -> Tuple[str, bool]:
        """Store one generated instance; returns ``(key, created)``.

        Adding the triple again is a no-op (``created=False``).  Adding
        a triple whose key already maps to *different* content raises:
        in a content-addressed store, one key meaning two payloads is
        corruption (or a non-deterministic factory), never mergeable.
        """
        key = entry_key(family, param, seed)
        text = canonical_json(entry_payload(family, param, seed, instance))
        digest = content_hash(text)
        row = CorpusEntry(
            key=key,
            family=family,
            param_repr=repr(param),
            seed=seed,
            n=instance.n,
            name=instance.name,
            content_hash=digest,
            created_at=datetime.now(timezone.utc).isoformat(),
        ).to_row()

        def mutate(entries: Dict[str, Dict[str, object]]) -> bool:
            existing = entries.get(key)
            if existing is not None:
                if existing["content_hash"] != digest:
                    raise CorpusError(
                        f"corpus entry {key} ({family!r} param "
                        f"{row['param_repr']} seed {seed}) already exists "
                        f"with content hash {existing['content_hash']}, "
                        f"but regeneration produced {digest}; the family "
                        "factory is non-deterministic or the corpus is "
                        "corrupt (run `repro corpus verify`)"
                    )
                return False
            # Write the entry file before the manifest row: a crash
            # between the two leaves an orphan file (harmless, verify
            # reports it) rather than a manifest row with no file.
            atomic_write_text(self.entry_path(key), text)
            entries[key] = row
            return True

        created = self._locked_manifest_update(mutate)
        return key, created

    def generate(
        self,
        family_name: str,
        grid: str = "quick",
        params: Optional[List[object]] = None,
        seed: int = 0,
        progress: Optional[Callable[[str], None]] = None,
    ) -> List[Tuple[str, bool]]:
        """Generate one family's grid via the registry and store it."""
        from repro.registry import FAMILIES, load_components

        load_components()
        family = FAMILIES.get(family_name)
        grid_params = list(params) if params is not None else list(
            family.params(grid)
        )
        results: List[Tuple[str, bool]] = []
        for param in grid_params:
            instance = family.factory(param)
            key, created = self.add(family.name, param, seed, instance)
            results.append((key, created))
            if progress is not None:
                verb = "stored" if created else "already present"
                progress(
                    f"[{family.name}] param {param!r} -> {key} "
                    f"(n={instance.n}, {verb})"
                )
        return results

    # -- read path -----------------------------------------------------
    def list_entries(self) -> List[CorpusEntry]:
        entries = self._read_manifest()
        return [
            CorpusEntry.from_row(key, entries[key])
            for key in sorted(entries)
        ]

    def __len__(self) -> int:
        return len(self._read_manifest())

    def __contains__(self, key: str) -> bool:
        return key in self._read_manifest()

    def load_payload(self, key: str) -> Dict[str, object]:
        """The verified entry document for ``key``.

        The file's bytes are re-hashed against the manifest before
        deserialization — a corpus read never trusts un-verified bytes.
        """
        entries = self._read_manifest()
        row = entries.get(key)
        if row is None:
            raise CorpusError(
                f"corpus at {self.root} has no entry {key!r} "
                "(see `repro corpus list`)"
            )
        path = self.entry_path(key)
        try:
            text = path.read_text()
        except OSError as exc:
            raise CorpusError(
                f"corpus entry file {path} is missing or unreadable: {exc}"
            ) from exc
        digest = content_hash(text)
        if digest != row["content_hash"]:
            raise CorpusError(
                f"corpus entry {key} fails verification: file hashes to "
                f"{digest}, manifest records {row['content_hash']} "
                "(bit rot or a hand edit; regenerate or re-import)"
            )
        return json.loads(text)

    def load_instance(self, key: str) -> Instance:
        return payload_to_instance(self.load_payload(key)["instance"])

    def get(self, family: str, param, seed: int = 0) -> Optional[Instance]:
        """The stored instance for a triple, or ``None`` if absent."""
        key = entry_key(family, param, seed)
        if key not in self._read_manifest():
            return None
        return self.load_instance(key)

    def entry_param(self, key: str):
        """The decoded grid parameter stored in one entry."""
        return decode_value(self.load_payload(key)["param"])

    # -- verification --------------------------------------------------
    def verify(self) -> List[str]:
        """Every integrity problem in the corpus, as human sentences.

        Checks, per manifest row: the entry file exists, its bytes hash
        to the recorded content hash, and its provenance triple derives
        the key it is filed under.  Also reports stray files under
        ``entries/`` that no manifest row claims.  An empty list means
        the corpus is intact.
        """
        problems: List[str] = []
        entries = self._read_manifest()
        for key in sorted(entries):
            row = entries[key]
            path = self.entry_path(key)
            if not path.exists():
                problems.append(f"{key}: entry file {path.name} is missing")
                continue
            text = path.read_text()
            digest = content_hash(text)
            if digest != row["content_hash"]:
                problems.append(
                    f"{key}: content hash mismatch (file {digest[:16]}..., "
                    f"manifest {str(row['content_hash'])[:16]}...)"
                )
                continue
            payload = json.loads(text)
            derived = entry_key(
                str(payload["family"]),
                decode_value(payload["param"]),
                int(payload["seed"]),
            )
            if derived != key:
                problems.append(
                    f"{key}: provenance triple derives key {derived} "
                    "(file filed under the wrong address)"
                )
        known = {f"{key}.json" for key in entries}
        if self.entries_dir.is_dir():
            for path in sorted(self.entries_dir.iterdir()):
                if path.name not in known and not path.name.startswith("."):
                    problems.append(
                        f"stray file {path.name} in entries/ "
                        "(not in the manifest)"
                    )
        return problems

    # -- export / import -----------------------------------------------
    def export(self, archive: Union[str, Path]) -> int:
        """Write the whole corpus to a deterministic ``.tar.gz``.

        Members are added in sorted order with zeroed timestamps and
        ownership, and the gzip header carries no mtime — the same
        corpus content always produces byte-identical archives, so an
        archive is itself content-addressable.
        """
        problems = self.verify()
        if problems:
            raise CorpusError(
                "refusing to export a corpus that fails verification:\n  "
                + "\n  ".join(problems)
            )
        entries = self._read_manifest()
        archive = Path(archive)
        archive.parent.mkdir(parents=True, exist_ok=True)
        buffer = io.BytesIO()
        with tarfile.open(fileobj=buffer, mode="w:gz", compresslevel=9) as tar:
            members = [(self.MANIFEST, self.manifest_path)] + [
                (f"entries/{key}.json", self.entry_path(key))
                for key in sorted(entries)
            ]
            for name, path in members:
                data = path.read_bytes()
                info = tarfile.TarInfo(name=name)
                info.size = len(data)
                info.mtime = 0
                info.uid = info.gid = 0
                info.uname = info.gname = ""
                tar.addfile(info, io.BytesIO(data))
        # A deterministic archive must not embed the compression time;
        # rewrite the 4-byte gzip MTIME field (bytes 4:8) to zero.
        blob = bytearray(buffer.getvalue())
        blob[4:8] = b"\x00\x00\x00\x00"
        with open(archive, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        return len(entries)

    def import_archive(self, archive: Union[str, Path]) -> Tuple[int, int]:
        """Merge an exported archive into this corpus.

        Every incoming entry is re-hashed against the archived manifest
        *before* anything is written — a tampered archive is rejected
        whole.  Returns ``(imported, skipped)``; a key already present
        with identical content is skipped, and a key present with
        different content raises (same conflict rule as :meth:`add`).
        """
        archive = Path(archive)
        try:
            with tarfile.open(archive, mode="r:gz") as tar:
                manifest_member = tar.extractfile(self.MANIFEST)
                if manifest_member is None:
                    raise CorpusError(
                        f"{archive} has no {self.MANIFEST}; not a corpus "
                        "archive"
                    )
                manifest = json.loads(manifest_member.read().decode("utf-8"))
                if manifest.get("format") != FORMAT_VERSION:
                    raise CorpusError(
                        f"{archive} holds corpus format "
                        f"{manifest.get('format')!r}; this build reads "
                        f"{FORMAT_VERSION!r}"
                    )
                incoming: Dict[str, Tuple[Dict[str, object], str]] = {}
                for key, row in manifest["entries"].items():
                    member = tar.extractfile(f"entries/{key}.json")
                    if member is None:
                        raise CorpusError(
                            f"{archive} manifest lists entry {key} but the "
                            "archive holds no file for it"
                        )
                    text = member.read().decode("utf-8")
                    digest = content_hash(text)
                    if digest != row["content_hash"]:
                        raise CorpusError(
                            f"archive entry {key} fails verification "
                            f"(hashes to {digest}, manifest records "
                            f"{row['content_hash']}); refusing the import"
                        )
                    incoming[key] = (row, text)
        except tarfile.TarError as exc:
            raise CorpusError(f"cannot read archive {archive}: {exc}") from exc

        imported = skipped = 0

        def mutate(entries: Dict[str, Dict[str, object]]) -> bool:
            nonlocal imported, skipped
            for key in sorted(incoming):
                row, text = incoming[key]
                existing = entries.get(key)
                if existing is not None:
                    if existing["content_hash"] != row["content_hash"]:
                        raise CorpusError(
                            f"import conflict on entry {key}: corpus has "
                            f"content {existing['content_hash'][:16]}..., "
                            f"archive has "
                            f"{str(row['content_hash'])[:16]}...; one of "
                            "them is corrupt"
                        )
                    skipped += 1
                    continue
                atomic_write_text(self.entry_path(key), text)
                entries[key] = dict(row)
                imported += 1
            return imported > 0

        self._locked_manifest_update(mutate)
        return imported, skipped


__all__ = ["CorpusEntry", "CorpusError", "InstanceCorpus"]
