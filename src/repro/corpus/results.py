"""The sqlite-backed campaign result store.

Every sweep point and every Monte-Carlo trial ever executed against a
store accumulates in one sqlite file, keyed exactly the way the live
engines key their work:

* sweep rows by the :meth:`~repro.exec.sweep.SweepSpec.cache_key` spec
  hash and the grid-point index;
* trial rows by the :func:`~repro.montecarlo.engine.trial_journal_key`
  run hash and the trial index.

Both engines' units of work are pure functions of their spec (DESIGN.md
§9/§11), so re-running a spec produces rows identical to the stored
ones — which is why every insert is ``INSERT OR IGNORE``: concurrent
writers and crash-retried batches converge on one row per unit instead
of conflicting.  Durability is sqlite's own (WAL journal, synchronous
writes); concurrency is sqlite's file locking plus a busy timeout, so
two processes appending to the same store block briefly instead of
failing.

Each row carries the git SHA of the writing checkout and a UTC
timestamp — provenance for result archaeology, deliberately excluded
from every lookup key (the *spec hash* already changes whenever any
result-affecting code changes, via the bytecode fingerprints in
``describe()``).
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
from contextlib import contextmanager
from datetime import datetime, timezone
from functools import lru_cache
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweeps (
    spec_key      TEXT PRIMARY KEY,
    label         TEXT NOT NULL,
    describe_json TEXT NOT NULL,
    num_points    INTEGER NOT NULL,
    git_sha       TEXT NOT NULL,
    created_at    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweep_points (
    spec_key    TEXT NOT NULL,
    point_index INTEGER NOT NULL,
    param_repr  TEXT NOT NULL,
    n           INTEGER NOT NULL,
    cost        REAL NOT NULL,
    detail_json TEXT,
    elapsed     REAL NOT NULL,
    git_sha     TEXT NOT NULL,
    created_at  TEXT NOT NULL,
    PRIMARY KEY (spec_key, point_index)
);
CREATE TABLE IF NOT EXISTS trial_runs (
    run_key    TEXT PRIMARY KEY,
    meta_json  TEXT NOT NULL,
    git_sha    TEXT NOT NULL,
    created_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    run_key      TEXT NOT NULL,
    trial        INTEGER NOT NULL,
    seed         INTEGER NOT NULL,
    valid        INTEGER NOT NULL,
    max_volume   INTEGER NOT NULL,
    max_distance INTEGER NOT NULL,
    max_queries  INTEGER NOT NULL,
    random_bits  INTEGER NOT NULL,
    created_at   TEXT NOT NULL,
    PRIMARY KEY (run_key, trial)
);
CREATE TABLE IF NOT EXISTS service_responses (
    request_key TEXT PRIMARY KEY,
    endpoint    TEXT NOT NULL,
    body        BLOB NOT NULL,
    git_sha     TEXT NOT NULL,
    created_at  TEXT NOT NULL
);
"""


class ResultStoreError(RuntimeError):
    """The store file is unusable (wrong schema, unreadable)."""


@lru_cache(maxsize=1)
def _git_sha() -> str:
    """The writing checkout's HEAD SHA, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _now() -> str:
    return datetime.now(timezone.utc).isoformat()


class ResultStore:
    """Append-only campaign results in one sqlite file.

    A fresh connection per operation keeps the store safe across
    ``fork()`` (the process backends fork workers mid-campaign; an
    inherited sqlite connection is not) and makes every method usable
    from any process without coordination beyond sqlite's own locks.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._ensure_schema()

    @contextmanager
    def _connect(self):
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        try:
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA busy_timeout=30000")
            except sqlite3.DatabaseError as exc:
                raise ResultStoreError(
                    f"{self.path} is not a usable result store: {exc}"
                ) from exc
            yield conn
        finally:
            conn.close()

    def _ensure_schema(self) -> None:
        with self._connect() as conn:
            try:
                with conn:
                    conn.executescript(_SCHEMA)
                    conn.execute(
                        "INSERT OR IGNORE INTO store_meta (key, value) "
                        "VALUES ('schema_version', ?)",
                        (str(SCHEMA_VERSION),),
                    )
                    row = conn.execute(
                        "SELECT value FROM store_meta "
                        "WHERE key = 'schema_version'"
                    ).fetchone()
            except sqlite3.DatabaseError as exc:
                raise ResultStoreError(
                    f"{self.path} is not a usable result store: {exc}"
                ) from exc
        if row is None or int(row[0]) != SCHEMA_VERSION:
            found = None if row is None else row[0]
            raise ResultStoreError(
                f"result store {self.path} has schema version {found!r}; "
                f"this build reads version {SCHEMA_VERSION}"
            )

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    def record_sweep_meta(
        self, spec_key: str, label: str, describe, num_points: int
    ) -> None:
        """Register a sweep spec (idempotent; first writer wins)."""
        with self._connect() as conn, conn:
            conn.execute(
                "INSERT OR IGNORE INTO sweeps "
                "(spec_key, label, describe_json, num_points, git_sha, "
                "created_at) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    spec_key,
                    label,
                    json.dumps(describe, sort_keys=True),
                    num_points,
                    _git_sha(),
                    _now(),
                ),
            )

    def record_sweep_point(
        self,
        spec_key: str,
        point_index: int,
        *,
        param_repr: str,
        n: int,
        cost: float,
        detail: Optional[Dict[str, object]],
        elapsed: float,
    ) -> None:
        """Append one executed grid point (idempotent)."""
        with self._connect() as conn, conn:
            conn.execute(
                "INSERT OR IGNORE INTO sweep_points "
                "(spec_key, point_index, param_repr, n, cost, detail_json, "
                "elapsed, git_sha, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    spec_key,
                    point_index,
                    param_repr,
                    n,
                    cost,
                    None if detail is None else json.dumps(
                        detail, sort_keys=True
                    ),
                    elapsed,
                    _git_sha(),
                    _now(),
                ),
            )

    def sweep_describe(self, spec_key: str) -> Optional[Dict[str, object]]:
        """The stored ``describe()`` payload for a spec, if registered."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT describe_json FROM sweeps WHERE spec_key = ?",
                (spec_key,),
            ).fetchone()
        return None if row is None else json.loads(row[0])

    def sweep_points(self, spec_key: str) -> Dict[int, Dict[str, object]]:
        """Stored points for one spec: ``index -> point fields``."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT point_index, n, cost, detail_json, elapsed "
                "FROM sweep_points WHERE spec_key = ? ORDER BY point_index",
                (spec_key,),
            ).fetchall()
        return {
            int(index): {
                "n": int(n),
                "cost": float(cost),
                "detail": None if detail is None else json.loads(detail),
                "elapsed": float(elapsed),
            }
            for index, n, cost, detail, elapsed in rows
        }

    # ------------------------------------------------------------------
    # Monte-Carlo trials
    # ------------------------------------------------------------------
    def record_trial_run(self, run_key: str, meta: Dict[str, object]) -> None:
        """Register a trial-run spec (idempotent; first writer wins)."""
        with self._connect() as conn, conn:
            conn.execute(
                "INSERT OR IGNORE INTO trial_runs "
                "(run_key, meta_json, git_sha, created_at) "
                "VALUES (?, ?, ?, ?)",
                (
                    run_key,
                    json.dumps(meta, sort_keys=True),
                    _git_sha(),
                    _now(),
                ),
            )

    def record_trials(
        self, run_key: str, records: Iterable[Dict[str, object]]
    ) -> None:
        """Append a batch of per-trial outcome records (idempotent).

        ``records`` are the journal-format dicts the MC engine emits
        (``kind="trial"``, trial/seed/valid/max_volume/...), so journal
        and store stay interchangeable record-for-record.
        """
        now = _now()
        rows = [
            (
                run_key,
                int(r["trial"]),
                int(r["seed"]),
                1 if r["valid"] else 0,
                int(r["max_volume"]),
                int(r["max_distance"]),
                int(r["max_queries"]),
                int(r["random_bits"]),
                now,
            )
            for r in records
            if r.get("kind", "trial") == "trial"
        ]
        if not rows:
            return
        with self._connect() as conn, conn:
            conn.executemany(
                "INSERT OR IGNORE INTO trials "
                "(run_key, trial, seed, valid, max_volume, max_distance, "
                "max_queries, random_bits, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )

    def trial_records(self, run_key: str) -> List[Dict[str, object]]:
        """Stored outcome records for one run, in trial order.

        Returned in the journal record format, so the engine replays
        store rows and journal lines through one code path.
        """
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT trial, seed, valid, max_volume, max_distance, "
                "max_queries, random_bits FROM trials "
                "WHERE run_key = ? ORDER BY trial",
                (run_key,),
            ).fetchall()
        return [
            {
                "kind": "trial",
                "trial": int(trial),
                "seed": int(seed),
                "valid": bool(valid),
                "max_volume": int(max_volume),
                "max_distance": int(max_distance),
                "max_queries": int(max_queries),
                "random_bits": int(random_bits),
            }
            for (
                trial,
                seed,
                valid,
                max_volume,
                max_distance,
                max_queries,
                random_bits,
            ) in rows
        ]

    # ------------------------------------------------------------------
    # service responses
    # ------------------------------------------------------------------
    def record_response(
        self, request_key: str, body: bytes, *, endpoint: str = ""
    ) -> None:
        """Persist one canonical service response (idempotent).

        ``body`` is the exact byte string the service sent for the
        request descriptor hashed into ``request_key``; responses are
        pure functions of their descriptor (DESIGN.md §13.4), so first
        writer wins and later writers are ignorable duplicates.
        """
        with self._connect() as conn, conn:
            conn.execute(
                "INSERT OR IGNORE INTO service_responses "
                "(request_key, endpoint, body, git_sha, created_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (request_key, endpoint, bytes(body), _git_sha(), _now()),
            )

    def get_response(self, request_key: str) -> Optional[bytes]:
        """The stored response bytes for a request key, if recorded."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT body FROM service_responses WHERE request_key = ?",
                (request_key,),
            ).fetchone()
        return None if row is None else bytes(row[0])

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Row counts per table — `repro corpus list --store` inventory."""
        with self._connect() as conn:
            counts = {
                table: conn.execute(
                    f"SELECT COUNT(*) FROM {table}"  # noqa: S608 - fixed set
                ).fetchone()[0]
                for table in (
                    "sweeps",
                    "sweep_points",
                    "trial_runs",
                    "trials",
                    "service_responses",
                )
            }
        return counts


def store_from_env(
    var: str = "REPRO_RESULT_STORE",
) -> Optional[ResultStore]:
    """A :class:`ResultStore` at ``$REPRO_RESULT_STORE``, if set."""
    path = os.environ.get(var)
    return ResultStore(path) if path else None


__all__ = [
    "ResultStore",
    "ResultStoreError",
    "SCHEMA_VERSION",
    "store_from_env",
]
