"""Content-addressed instance corpus + sqlite campaign result store.

Two persistence layers with one provenance discipline:

* :class:`~repro.corpus.store.InstanceCorpus` — generated instances on
  disk, each entry addressed by the sha256 of its generating triple
  ``(family, param, seed)`` under the versioned file format of
  :mod:`repro.corpus.format`, with an flock-serialized manifest and a
  content hash per file (``repro corpus generate|list|import|export|
  verify``).
* :class:`~repro.corpus.results.ResultStore` — every sweep point and
  Monte-Carlo trial batch ever run, accumulated in sqlite and keyed by
  the same spec hashes the live engines use, so ``run_sweeps(...,
  store=...)`` / ``run_trials(..., store=...)`` serve re-runs from the
  store instead of re-executing (DESIGN.md §12).
"""

from repro.corpus.format import (
    FORMAT_VERSION,
    CorpusFormatError,
    canonical_json,
    content_hash,
    entry_key,
    instance_to_payload,
    payload_to_instance,
)
from repro.corpus.results import (
    ResultStore,
    ResultStoreError,
    store_from_env,
)
from repro.corpus.store import CorpusEntry, CorpusError, InstanceCorpus

__all__ = [
    "FORMAT_VERSION",
    "CorpusEntry",
    "CorpusError",
    "CorpusFormatError",
    "InstanceCorpus",
    "ResultStore",
    "ResultStoreError",
    "canonical_json",
    "content_hash",
    "entry_key",
    "instance_to_payload",
    "payload_to_instance",
    "store_from_env",
]
