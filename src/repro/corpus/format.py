"""The versioned on-disk instance format (DESIGN.md §12).

One corpus entry is one JSON document holding a fully materialized
:class:`~repro.graphs.labelings.Instance` plus the provenance triple
``(family, param, seed)`` that generated it.  Two hashes govern the
store:

* the **entry key** — sha256 of the canonical JSON of ``(format
  version, family, repr(param), seed)``, truncated to 16 hex chars
  (the repo's spec-hash convention).  It names *what was asked for*,
  so regenerating the same triple always lands on the same entry.
* the **content hash** — the full sha256 of the entry file's canonical
  JSON bytes.  It names *what was stored*, so ``repro corpus verify``
  detects any bit flip, truncation, or hand edit, and an import
  refuses payloads whose bytes do not hash to their manifest entry.

Bumping :data:`FORMAT_VERSION` changes every entry key, so old and new
formats can never alias each other inside one corpus directory.

JSON cannot represent tuples or non-string dict keys, both of which
appear in family params and instance metadata (grid params like
``(3, 2)``, meta maps keyed by node id).  :func:`encode_value` makes
the encoding lossless instead of lossy: tuples become
``{"__tuple__": [...]}``, dicts with any non-string key become
``{"__items__": [[k, v], ...]}``, and unrepresentable types are
rejected loudly rather than silently coerced.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from repro.graphs.labelings import Instance, Labeling, NodeLabel
from repro.graphs.port_graph import PortGraph

FORMAT_VERSION = "repro-corpus/1"

#: NodeLabel fields persisted per node, in declaration order.
_LABEL_FIELDS = (
    "parent",
    "left_child",
    "right_child",
    "color",
    "left_neighbor",
    "right_neighbor",
    "level",
    "bit",
)

_TUPLE_MARK = "__tuple__"
_ITEMS_MARK = "__items__"


class CorpusFormatError(ValueError):
    """A value or payload cannot be (de)serialized losslessly."""


# ----------------------------------------------------------------------
# canonical bytes + hashes
# ----------------------------------------------------------------------
def canonical_json(payload) -> str:
    """The one canonical text for a payload: sorted keys, no spaces.

    Hashes are computed over these bytes, so any two writers of the
    same logical payload produce identical files.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def content_hash(text: str) -> str:
    """Full sha256 hex digest of an entry file's text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def entry_key(family: str, param, seed: int = 0) -> str:
    """The 16-hex content address of one ``(family, param, seed)`` ask.

    ``repr(param)`` (not the param itself) keys the hash, matching how
    :meth:`~repro.exec.sweep.SweepSpec.describe` fingerprints grids:
    params may be tuples or other non-JSON values, and ``repr`` is
    stable for every grid type the registry uses (ints, tuples of
    ints, strings).
    """
    blob = canonical_json([FORMAT_VERSION, family, repr(param), seed])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# lossless value encoding
# ----------------------------------------------------------------------
def encode_value(value):
    """Encode a param/meta value into JSON-safe structure, losslessly."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE_MARK: [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        plain = all(
            isinstance(k, str) and k not in (_TUPLE_MARK, _ITEMS_MARK)
            for k in value
        )
        if plain:
            return {k: encode_value(v) for k, v in value.items()}
        return {
            _ITEMS_MARK: [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ]
        }
    raise CorpusFormatError(
        f"cannot losslessly encode {type(value).__name__!r} value "
        f"{value!r}; corpus entries hold JSON-representable structure "
        "(plus tuples and non-string dict keys via markers)"
    )


def decode_value(value):
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if set(value) == {_TUPLE_MARK}:
            return tuple(decode_value(v) for v in value[_TUPLE_MARK])
        if set(value) == {_ITEMS_MARK}:
            return {
                decode_value(k): decode_value(v)
                for k, v in value[_ITEMS_MARK]
            }
        return {k: decode_value(v) for k, v in value.items()}
    return value


# ----------------------------------------------------------------------
# instance <-> payload
# ----------------------------------------------------------------------
def instance_to_payload(instance: Instance) -> Dict[str, object]:
    """Serialize a materialized instance, ports and labels included.

    Node rows are lists (not an id-keyed object) so integer node ids
    survive JSON untouched.  Each row is ``[node_id, [entry, ...]]``
    where ``entry`` is ``[neighbor, neighbor_port]`` for a connected
    port and ``null`` for a reserved-but-dangling one — dangling ports
    are semantic (the adversarial constructions rely on them) and must
    round-trip.
    """
    graph = instance.graph
    nodes: List[List[object]] = []
    for node_id in graph.nodes():
        row: List[object] = []
        for port in range(1, graph.num_ports(node_id) + 1):
            neighbor = graph.neighbor_at(node_id, port)
            if neighbor is None:
                row.append(None)
            else:
                row.append([neighbor, graph.endpoint_port(node_id, port)])
        nodes.append([node_id, row])
    labels: List[List[object]] = []
    for node_id in instance.labeling.nodes():
        label = instance.labeling.get(node_id)
        fields = {
            name: getattr(label, name)
            for name in _LABEL_FIELDS
            if getattr(label, name) is not None
        }
        labels.append([node_id, fields])
    return {
        "format": FORMAT_VERSION,
        "n": instance.n,
        "name": instance.name,
        "max_degree": graph.max_degree,
        "nodes": nodes,
        "labels": labels,
        "graph_meta": encode_value(graph.meta),
        "meta": encode_value(instance.meta),
    }


def payload_to_instance(payload: Dict[str, object]) -> Instance:
    """Rebuild the instance; inverse of :func:`instance_to_payload`."""
    if payload.get("format") != FORMAT_VERSION:
        raise CorpusFormatError(
            f"unsupported corpus format {payload.get('format')!r} "
            f"(this build reads {FORMAT_VERSION!r})"
        )
    graph = PortGraph(int(payload["max_degree"]))
    rows: Dict[int, List[Optional[Tuple[int, int]]]] = {}
    for node_id, row in payload["nodes"]:
        graph.add_node(node_id, len(row))
        rows[node_id] = [
            None if entry is None else (entry[0], entry[1]) for entry in row
        ]
    # Every undirected edge appears in both endpoints' rows; add it from
    # the lexicographically smaller (node, port) side only, since
    # add_edge wires both directions at once.
    for node_id, row in rows.items():
        for port, entry in enumerate(row, start=1):
            if entry is None:
                continue
            neighbor, neighbor_port = entry
            if (node_id, port) < (neighbor, neighbor_port):
                graph.add_edge(node_id, port, neighbor, neighbor_port)
    graph.meta.update(decode_value(payload["graph_meta"]))
    labels = {
        int(node_id): NodeLabel(**fields)
        for node_id, fields in payload["labels"]
    }
    return Instance(
        graph=graph,
        labeling=Labeling(labels),
        n=int(payload["n"]),
        name=str(payload["name"]),
        meta=decode_value(payload["meta"]),
    )


def entry_payload(
    family: str, param, seed: int, instance: Instance
) -> Dict[str, object]:
    """The full entry document: provenance triple + serialized instance."""
    return {
        "format": FORMAT_VERSION,
        "family": family,
        "param": encode_value(param),
        "param_repr": repr(param),
        "seed": seed,
        "instance": instance_to_payload(instance),
    }


__all__ = [
    "FORMAT_VERSION",
    "CorpusFormatError",
    "canonical_json",
    "content_hash",
    "decode_value",
    "encode_value",
    "entry_key",
    "entry_payload",
    "instance_to_payload",
    "payload_to_instance",
]
