"""Named sweep suites: the paper-table batches as addressable data.

Each suite is a named builder returning the exact :class:`SweepSpec`
batch one bench table used to declare inline — same families (via the
component registry), same algorithms, seeds, start nodes, and candidate
growth classes.  The table scripts under ``benchmarks/`` and the
``repro sweep`` CLI both execute suites through this one module, so the
printed claimed-vs-measured rows are identical no matter which entry
point ran them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exec.sweep import (
    InstanceFamily,
    SweepCache,
    SweepResult,
    SweepSpec,
    run_sweeps,
)
from repro.registry import (
    ALGORITHMS,
    FAMILIES,
    PROBLEMS,
    RegistryError,
    load_components,
)

# Candidate growth classes shared by the Table-1 style sweeps.
DIST_CANDIDATES = ["log log n", "log n", "n^{1/3}", "n^{1/2}", "n"]
VOL_CANDIDATES = [
    "log n",
    "log^2 n",
    "n^{1/3}",
    "n^{1/2}",
    "n^{1/2} log n",
    "n",
]
# The Figure-1/2 landscape spans the classic classes too.
LANDSCAPE_CANDIDATES = ["1", "log* n", "log log n", "log n", "n^{1/2}", "n"]


@dataclass(frozen=True)
class SuiteDef:
    """One named suite: a builder plus its banner title and footnotes."""

    name: str
    title: str
    build: Callable[[], List[SweepSpec]]
    notes: tuple = ()
    description: str = ""


SUITES: Dict[str, SuiteDef] = {}


def suite(
    name: str, title: str, notes: tuple = (), description: str = ""
) -> Callable[[Callable], Callable]:
    """Decorator: register a zero-arg ``build() -> List[SweepSpec]``."""

    def decorate(build: Callable[[], List[SweepSpec]]) -> Callable:
        SUITES[name] = SuiteDef(
            name=name,
            title=title,
            build=build,
            notes=notes,
            description=description or title,
        )
        return build

    return decorate


def suite_names() -> List[str]:
    return list(SUITES)


def get_suite(name: str) -> SuiteDef:
    try:
        return SUITES[name]
    except KeyError:
        raise RegistryError(
            f"unknown suite {name!r}; known suites: {', '.join(SUITES)}"
        ) from None


def run_suite(
    name: str,
    backend=None,
    cache: Optional[SweepCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    printer: Optional[Callable[[str], None]] = print,
    store=None,
) -> List[SweepResult]:
    """Execute a named suite and print its claimed-vs-measured rows.

    ``store`` (a :class:`~repro.corpus.results.ResultStore`) persists
    every executed point and serves stored points on re-runs.
    """
    load_components()
    definition = get_suite(name)
    if printer is not None:
        printer("")
        printer("=" * 78)
        printer(definition.title)
        printer("=" * 78)
    results = run_sweeps(
        definition.build(), backend, cache=cache, progress=progress,
        store=store,
    )
    if printer is not None:
        for result in results:
            printer(result.format_row())
        for note in definition.notes:
            printer(note)
    return results


# ----------------------------------------------------------------------
# shared start-node selectors (module-level so sweep caching can
# fingerprint them stably)
# ----------------------------------------------------------------------
def root_only(instance, param):
    return [instance.meta["root"]]


def first_node_only(instance, param):
    return [1]


def backbone_probes(instance, m):
    """Top backbone ends + the last node of a Hierarchical-THC instance."""
    return [1, m // 2 + 1, m, instance.graph.num_nodes]


def waypoint_probes(instance, shape):
    """Hybrid root + two BalancedTree component roots."""
    return [instance.meta["root"]] + instance.meta["bt_roots"][:2]


def hh_probes(instance, shape):
    """Both population roots + one BalancedTree component root."""
    from repro.graphs.tree_structure import (
        InstanceTopology,
        right_child_node,
    )

    topo = InstanceTopology(instance)
    hybrid_root = instance.meta["hybrid_root"]
    # A BalancedTree component root: its own answer requires the
    # Θ(√n)-sized component gather, the R-VOL-dominant cost.
    bt_probe = right_child_node(topo, hybrid_root)
    return [instance.meta["hierarchical_root"], hybrid_root, bt_probe]


def _family(name: str, grid: str = "full") -> InstanceFamily:
    load_components()
    return FAMILIES.get(name).instance_family(grid)


def _algo(name: str) -> Callable:
    load_components()
    return ALGORITHMS.get(name).factory


# ----------------------------------------------------------------------
# Table 1 — the four complexities of all five constructions
# ----------------------------------------------------------------------
@suite(
    "table1/leaf-coloring",
    "Table 1 — LeafColoring (§3): claims log n, log n, log n, n",
)
def table1_leaf_coloring() -> List[SweepSpec]:
    family = _family("leaf-coloring")
    return [
        SweepSpec("LeafColoring R-DIST", "Θ(log n)", family, "distance",
                  _algo("leaf-coloring/distance"),
                  candidates=DIST_CANDIDATES),
        SweepSpec("LeafColoring D-DIST", "Θ(log n)", family, "distance",
                  _algo("leaf-coloring/distance"),
                  candidates=DIST_CANDIDATES),
        SweepSpec("LeafColoring R-VOL", "Θ(log n)", family, "volume",
                  _algo("leaf-coloring/rw-to-leaf"), seed=7,
                  candidates=VOL_CANDIDATES),
        SweepSpec("LeafColoring D-VOL", "Θ(n)", family, "volume",
                  _algo("leaf-coloring/full-gather"), nodes=root_only,
                  candidates=VOL_CANDIDATES),
    ]


@suite(
    "table1/balanced-tree",
    "Table 1 — BalancedTree (§4): claims log n, log n, n, n",
)
def table1_balanced_tree() -> List[SweepSpec]:
    family = _family("balanced-tree")
    return [
        SweepSpec("BalancedTree R-DIST", "Θ(log n)", family, "distance",
                  _algo("balanced-tree/distance"),
                  candidates=DIST_CANDIDATES),
        SweepSpec("BalancedTree D-DIST", "Θ(log n)", family, "distance",
                  _algo("balanced-tree/distance"),
                  candidates=DIST_CANDIDATES),
        SweepSpec("BalancedTree R-VOL", "Θ(n)", family, "volume",
                  _algo("balanced-tree/full-gather"), nodes=root_only,
                  candidates=VOL_CANDIDATES),
        SweepSpec("BalancedTree D-VOL", "Θ(n)", family, "volume",
                  _algo("balanced-tree/full-gather"), nodes=root_only,
                  candidates=VOL_CANDIDATES),
    ]


@suite(
    "table1/hierarchical-thc",
    "Table 1 — Hierarchical-THC(2) (§5): claims n^1/2, n^1/2, "
    "Θ̃(n^1/2), Θ̃(n)",
    notes=(
        "  (D-VOL lower bound is adversarial: see bench_prop520; the "
        "row above is the matching O(n) upper bound)",
    ),
)
def table1_hierarchical_thc() -> List[SweepSpec]:
    family = _family("hierarchical-thc(2)")
    return [
        SweepSpec("Hierarchical-THC(2) R-DIST", "Θ(n^{1/2})", family,
                  "distance", _algo("hierarchical-thc(2)/recursive"),
                  nodes=backbone_probes, candidates=DIST_CANDIDATES),
        SweepSpec("Hierarchical-THC(2) D-DIST", "Θ(n^{1/2})", family,
                  "distance", _algo("hierarchical-thc(2)/recursive"),
                  nodes=backbone_probes, candidates=DIST_CANDIDATES),
        SweepSpec("Hierarchical-THC(2) R-VOL", "Θ̃(n^{1/2})", family,
                  "volume", _algo("hierarchical-thc(2)/waypoint"), seed=3,
                  nodes=backbone_probes, candidates=VOL_CANDIDATES),
        SweepSpec("Hierarchical-THC(2) D-VOL", "Θ̃(n)", family,
                  "volume", _algo("hierarchical-thc(2)/full-gather"),
                  nodes=first_node_only, candidates=VOL_CANDIDATES),
    ]


@suite(
    "table1/hybrid-thc",
    "Table 1 — Hybrid-THC(2) (§6): claims log n, log n, Θ̃(n^1/2), Θ̃(n)",
)
def table1_hybrid_thc() -> List[SweepSpec]:
    family = _family("hybrid-thc(2)")
    return [
        SweepSpec("Hybrid-THC(2) R-DIST", "Θ(log n)", family, "distance",
                  _algo("hybrid-thc(2)/distance"),
                  candidates=DIST_CANDIDATES),
        SweepSpec("Hybrid-THC(2) D-DIST", "Θ(log n)", family, "distance",
                  _algo("hybrid-thc(2)/distance"),
                  candidates=DIST_CANDIDATES),
        SweepSpec("Hybrid-THC(2) R-VOL", "Θ̃(n^{1/2})", family, "volume",
                  _algo("hybrid-thc(2)/waypoint"), seed=5,
                  nodes=waypoint_probes, candidates=VOL_CANDIDATES),
        SweepSpec("Hybrid-THC(2) D-VOL", "Θ̃(n)", family, "volume",
                  _algo("hybrid-thc(2)/full-gather"), nodes=root_only,
                  candidates=VOL_CANDIDATES),
    ]


@suite(
    "table1/hh-thc",
    "Table 1 — HH-THC(2,3) (§6.1): claims n^1/3, n^1/3, Θ̃(n^1/2), Θ̃(n)",
)
def table1_hh_thc() -> List[SweepSpec]:
    family = _family("hh-thc(2,3)")
    return [
        SweepSpec("HH-THC(2,3) R-DIST", "Θ(n^{1/3})", family, "distance",
                  _algo("hh-thc(2,3)/distance"), nodes=hh_probes,
                  candidates=DIST_CANDIDATES),
        SweepSpec("HH-THC(2,3) D-DIST", "Θ(n^{1/3})", family, "distance",
                  _algo("hh-thc(2,3)/distance"), nodes=hh_probes,
                  candidates=DIST_CANDIDATES),
        SweepSpec("HH-THC(2,3) R-VOL", "Θ̃(n^{1/2})", family, "volume",
                  _algo("hh-thc(2,3)/waypoint"), seed=2, nodes=hh_probes,
                  candidates=VOL_CANDIDATES),
        SweepSpec("HH-THC(2,3) D-VOL", "Θ̃(n)", family, "volume",
                  _algo("hh-thc(2,3)/full-gather"), nodes=hh_probes,
                  candidates=VOL_CANDIDATES),
    ]


# ----------------------------------------------------------------------
# Figures 1 and 2 — the complexity landscapes
# ----------------------------------------------------------------------
def _landscape_trees() -> InstanceFamily:
    entry = FAMILIES.get("leaf-coloring")
    return InstanceFamily(entry.name, entry.factory, [4, 5, 6, 7])


@suite(
    "fig1/distance-landscape",
    "Figure 1 — distance landscape (deterministic vs randomized)",
)
def fig1_distance_landscape() -> List[SweepSpec]:
    cycles = _family("cycle")
    small_cycles = _family("cycle-small")
    trees = _landscape_trees()
    return [
        SweepSpec("cycle 3-coloring DIST", "Θ(log* n)", cycles,
                  "distance", _algo("cycle/cole-vishkin"),
                  candidates=LANDSCAPE_CANDIDATES),
        SweepSpec("cycle MIS DIST", "Θ(log* n)", small_cycles,
                  "distance", _algo("cycle/mis"),
                  candidates=LANDSCAPE_CANDIDATES),
        SweepSpec("even-cycle 2-coloring DIST", "Θ(n)", cycles,
                  "distance", _algo("cycle/2-coloring"),
                  candidates=LANDSCAPE_CANDIDATES),
        SweepSpec("LeafColoring DIST", "Θ(log n)", trees, "distance",
                  _algo("leaf-coloring/distance"),
                  candidates=LANDSCAPE_CANDIDATES),
    ]


@suite(
    "fig2/volume-landscape",
    "Figure 2 — volume landscape (classes A/B collapse, §1.2)",
)
def fig2_volume_landscape() -> List[SweepSpec]:
    cycles = _family("cycle")
    trees = _landscape_trees()
    return [
        SweepSpec("cycle 3-coloring VOL", "Θ(log* n)", cycles, "volume",
                  _algo("cycle/cole-vishkin"),
                  candidates=LANDSCAPE_CANDIDATES),
        SweepSpec("LeafColoring R-VOL", "Θ(log n)", trees, "volume",
                  _algo("leaf-coloring/rw-to-leaf"), seed=3,
                  candidates=LANDSCAPE_CANDIDATES),
        SweepSpec("cycle 3-coloring DIST", "Θ(log* n)", cycles,
                  "distance", _algo("cycle/cole-vishkin"),
                  candidates=LANDSCAPE_CANDIDATES),
    ]


# ----------------------------------------------------------------------
# Implicit giant-n scaling (PR 7): the R-VOL curve far beyond any
# materializable size, served by InstanceSpec + ImplicitOracle
# ----------------------------------------------------------------------
def _implicit_leaf_coloring_hard(depth: int):
    from repro.model.implicit import InstanceSpec

    return InstanceSpec("leaf-coloring-hard", depth)


@suite(
    "implicit/scaling",
    "Implicit giant-n — LeafColoring R-VOL at n up to 2^24-1 "
    "(InstanceSpec: nodes synthesized on demand, bounded memory)",
    notes=(
        "  (no instance is materialized: each point ships an O(1) "
        "InstanceSpec and realizes only the O(log n) nodes the walk "
        "touches; the implicit-smoke CI job gates peak RSS < 512 MB)",
    ),
)
def implicit_scaling() -> List[SweepSpec]:
    family = InstanceFamily(
        "leaf-coloring-hard[implicit]",
        _implicit_leaf_coloring_hard,
        [17, 20, 23],  # n = 2^(d+1)-1: 262143, 2097151, 16777215
    )
    return [
        SweepSpec(
            "LeafColoring R-VOL (implicit)",
            "Θ(log n)",
            family,
            "volume",
            _algo("leaf-coloring/rw-to-leaf"),
            nodes=root_only,
            seed=7,
            candidates=VOL_CANDIDATES,
        ),
    ]


# ----------------------------------------------------------------------
# Monte Carlo — streaming success-probability estimation (PR 5)
# ----------------------------------------------------------------------
def _problem(name: str) -> Callable:
    load_components()
    return PROBLEMS.get(name).factory


@suite(
    "mc/success-rates",
    "Monte Carlo — randomized-solver success rates (streaming CIs, "
    "early stopping)",
    notes=(
        "  (per-point trial counts / CI bounds / stopping reasons ride "
        "in SweepPoint.detail; `repro sweep mc/success-rates --json`)",
    ),
)
def mc_success_rates() -> List[SweepSpec]:
    """W.h.p. solvers should estimate to rate ≈ 1 on every family."""
    from repro.montecarlo.engine import TrialPolicy

    policy = TrialPolicy(
        min_trials=8, max_trials=64, batch_size=8, tolerance=0.1
    )
    rate_candidates = ["1", "log n"]
    problem = _problem("leaf-coloring")
    algo = _algo("leaf-coloring/rw-to-leaf")
    specs = []
    for family_name in (
        "leaf-coloring",
        "random-tree",
        "random-tree-cyclic",
        "leaf-coloring-perturbed",
    ):
        specs.append(
            SweepSpec(
                f"RWtoLeaf success @ {family_name}",
                "Θ(1) (→ 1 w.h.p.)",
                _family(family_name, "quick"),
                "success_rate",
                algo,
                seed=7,
                candidates=rate_candidates,
                problem_factory=problem,
                trial_policy=policy,
            )
        )
    return specs


__all__ = [
    "DIST_CANDIDATES",
    "LANDSCAPE_CANDIDATES",
    "SUITES",
    "SuiteDef",
    "VOL_CANDIDATES",
    "backbone_probes",
    "first_node_only",
    "get_suite",
    "hh_probes",
    "root_only",
    "run_suite",
    "suite",
    "suite_names",
    "waypoint_probes",
]
