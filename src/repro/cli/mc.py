"""``repro mc`` — streaming Monte-Carlo success estimation by name.

Runs the :mod:`repro.montecarlo` engine on one registry cell (algorithm ×
family × grid parameter): batched solve-and-check trials with online
statistics and optional early stopping, the same
:func:`~repro.montecarlo.engine.run_trials` call the bench artifact's
``monte_carlo`` section and the ``success_rate`` sweep metric make.

Exit codes: 0 success, 1 the estimated rate fell below ``--gate``,
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.registry import RegistryError, load_components


def _policy(args: argparse.Namespace):
    from repro.montecarlo.engine import QUICK_POLICY, TrialPolicy

    # --quick selects the shared preset (the exact policy the bench
    # artifact's monte_carlo section gates on); explicit flags override
    # it field by field — the budget flags default to None so a passed
    # value is distinguishable from "use the preset".
    base = QUICK_POLICY if args.quick else TrialPolicy()

    def pick(value, preset):
        return preset if value is None else value

    return TrialPolicy(
        min_trials=pick(args.min_trials, base.min_trials),
        max_trials=pick(args.max_trials, base.max_trials),
        batch_size=pick(args.batch_size, base.batch_size),
        confidence=pick(args.confidence, base.confidence),
        tolerance=pick(args.tolerance, base.tolerance),
        early_stop=not args.no_early_stop,
        method=pick(args.method, base.method),
    )


def cmd_mc(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.cli import _fail, implicit_instance, parse_param, resolve_cell
    from repro.exec.backends import get_backend
    from repro.montecarlo.engine import run_trials

    load_components()
    # One ExitStack owns the backend for the whole handler: every early
    # _fail return below (bad family/param, journal errors, ...) still
    # releases pool resources promptly (a leaked ProcessPoolExecutor
    # races interpreter teardown and spews atexit tracebacks).
    with ExitStack() as stack:
        try:
            problem, algorithm, family = resolve_cell(
                args.algorithm, args.family
            )
            policy = _policy(args)
            backend = get_backend(args.backend)
        except (RegistryError, ValueError) as exc:
            return _fail(str(exc))
        stack.callback(backend.close)
        param = (
            parse_param(args.param)
            if args.param is not None
            else family.quick[-1]
        )
        base_seed = algorithm.seed if args.seed is None else args.seed
        try:
            if args.implicit:
                instance = implicit_instance(family, param)
            else:
                instance = family.instance(param)
        except RegistryError as exc:
            return _fail(str(exc))
        except Exception as exc:  # bad --param values surface here
            return _fail(
                f"family {family.name!r} rejected param {param!r}: {exc}"
            )
        def progress(line: str) -> None:
            # stderr on purpose: --progress must not corrupt --json output.
            print(line, file=sys.stderr)

        from repro.corpus import ResultStore, ResultStoreError
        from repro.faults.journal import JournalError

        try:
            result = run_trials(
                problem.make(),
                instance,
                algorithm.make(),
                policy,
                base_seed=base_seed,
                backend=backend,
                journal=args.journal,
                store=ResultStore(args.store) if args.store else None,
                progress=progress if args.progress else None,
            )
        except (JournalError, ResultStoreError) as exc:
            return _fail(str(exc))
    low, high = result.interval()
    payload = {
        "algorithm": algorithm.name,
        "problem": problem.name,
        "family": family.name,
        "param": repr(param),
        "instance": instance.name,
        "n": instance.n,
        "implicit": bool(args.implicit),
        "base_seed": base_seed,
        "backend": args.backend or "serial",
        "policy": policy.describe(),
        **result.to_payload(),
    }
    if result.fault_log is not None:
        payload["faults"] = result.fault_log.to_payload()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{algorithm.name} on {instance.name} "
            f"(n={payload['n']}, base_seed={base_seed}, "
            f"backend={payload['backend']}):"
        )
        print(
            f"  rate {result.rate:.3f} "
            f"[{low:.3f}, {high:.3f}] @{policy.confidence:.0%} "
            f"({policy.method}), {result.trials} trials, "
            f"stopped: {result.stopped} ({result.elapsed:.2f}s)"
        )
        vol = result.volume_sketch.summary()
        dist = result.distance_sketch.summary()
        print(
            f"  per-trial max VOL p50/p90/max "
            f"{vol['p50']:g}/{vol['p90']:g}/{vol['max']:g}  "
            f"DIST p50/p90/max "
            f"{dist['p50']:g}/{dist['p90']:g}/{dist['max']:g}"
        )
    if args.gate is not None and result.rate < args.gate:
        print(
            f"repro mc: gate failed: rate {result.rate:.3f} < "
            f"{args.gate:.3f}",
            file=sys.stderr,
        )
        return 1
    return 0


def add_mc_arguments(sub) -> None:
    p_mc = sub.add_parser(
        "mc",
        help="streaming Monte-Carlo success estimation on one registry cell",
    )
    p_mc.add_argument("algorithm", help="registered algorithm name")
    p_mc.add_argument(
        "--family", help="instance family (default: first compatible)"
    )
    p_mc.add_argument(
        "--param",
        help="grid parameter, e.g. 5 or '(3, 0.1)' "
        "(default: largest quick-grid entry)",
    )
    p_mc.add_argument(
        "--seed", type=int, default=None,
        help="base seed; trial i runs under base_seed + i "
        "(default: the algorithm's registered seed)",
    )
    p_mc.add_argument(
        "--implicit", action="store_true",
        help="serve the instance from its implicit generator "
        "(implicit-capable families only)",
    )
    p_mc.add_argument(
        "--backend", help="serial | reference | batch | process[:N]"
    )
    p_mc.add_argument(
        "--min-trials", type=int, default=None,
        help="default 16 (8 under --quick)",
    )
    p_mc.add_argument(
        "--max-trials", type=int, default=None,
        help="default 256 (32 under --quick)",
    )
    p_mc.add_argument(
        "--batch-size", type=int, default=None,
        help="default 16 (8 under --quick)",
    )
    p_mc.add_argument("--confidence", type=float, default=None)
    p_mc.add_argument(
        "--tolerance", type=float, default=None,
        help="stop once the CI half-width is within this "
        "(default 0.05; 0.1 under --quick)",
    )
    p_mc.add_argument(
        "--method", choices=["wilson", "clopper-pearson"], default=None
    )
    p_mc.add_argument(
        "--no-early-stop", action="store_true",
        help="fixed-count semantics: run exactly --max-trials trials",
    )
    p_mc.add_argument(
        "--quick", action="store_true",
        help="the bench-artifact preset: 8..32 trials in batches of 8, "
        "tolerance 0.1; explicit flags still override",
    )
    p_mc.add_argument(
        "--gate", type=float, default=None,
        help="exit 1 if the estimated rate falls below this",
    )
    p_mc.add_argument(
        "--journal", metavar="PATH", default=None,
        help="crash-safe JSONL journal: completed trials are appended "
        "durably and replayed (not re-run) when the same spec resumes "
        "after an interruption",
    )
    p_mc.add_argument(
        "--store", metavar="PATH", default=None,
        help="sqlite result store: trial batches are appended under the "
        "run's spec hash and replayed (not re-run) on the next "
        "identical invocation",
    )
    p_mc.add_argument("--progress", action="store_true")
    p_mc.add_argument("--json", action="store_true")
    p_mc.set_defaults(func=cmd_mc)
