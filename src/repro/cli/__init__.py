"""The ``repro`` command-line interface.

One addressable surface over the component registry:

* ``repro list`` — every registered problem, algorithm, instance family,
  and sweep suite, with capability metadata;
* ``repro run`` — solve-and-check one algorithm on one family instance
  by name (the same :func:`~repro.model.runner.solve_and_check` call the
  API makes, so verdicts are reproducible from the command line);
* ``repro sweep`` — execute named suites, an ad-hoc family x algorithm
  sweep, or a JSON spec file through the sweep orchestrator;
* ``repro mc`` — streaming Monte-Carlo success estimation on one
  registry cell, with confidence intervals and early stopping (see
  :mod:`repro.cli.mc`);
* ``repro bench`` — run the registry-enumerated smoke matrix and write
  the machine-readable ``BENCH_repro.json`` artifact (see
  :mod:`repro.cli.bench`).

Exit codes: 0 success, 1 validation failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.registry import (
    ADVERSARIES,
    ALGORITHMS,
    FAMILIES,
    PROBLEMS,
    RegistryError,
    iter_compatible,
    load_components,
)

USAGE_ERROR = 2


def _fail(message: str) -> int:
    print(f"repro: error: {message}", file=sys.stderr)
    return USAGE_ERROR


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A plain fixed-width table (no external dependencies)."""
    cells = [list(headers)] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def parse_param(text: str):
    """Parse a grid parameter: int, tuple, ... — or the raw string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def resolve_cell(
    algorithm_name: str,
    family_name: Optional[str] = None,
    problem_name: Optional[str] = None,
):
    """Algorithm name (+ optional family/problem) -> registry entries.

    The shared resolution behind ``repro run`` and ``repro mc``: the
    algorithm determines the problem, the family defaults to the first
    compatible one, and every declared capability (family problems,
    per-algorithm family restrictions, an asserted problem name) is
    checked — raising :class:`~repro.registry.RegistryError` with the
    CLI's usage-error messages.
    """
    algorithm = ALGORITHMS.get(algorithm_name)
    problem = PROBLEMS.get(algorithm.problem)
    if problem_name is not None and problem_name != problem.name:
        raise RegistryError(
            f"algorithm {algorithm.name!r} solves {problem.name!r}, "
            f"not {problem_name!r}"
        )
    if family_name is not None:
        family = FAMILIES.get(family_name)
        if problem.name not in family.problems:
            raise RegistryError(
                f"family {family.name!r} does not generate "
                f"{problem.name!r} instances "
                f"(it generates: {', '.join(family.problems)})"
            )
        if (
            algorithm.families is not None
            and family.name not in algorithm.families
        ):
            raise RegistryError(
                f"algorithm {algorithm.name!r} is restricted to families "
                f"{', '.join(algorithm.families)}"
            )
    else:
        compatible = list(iter_compatible(algorithms=[algorithm.name]))
        if not compatible:
            raise RegistryError(
                f"no registered family generates instances of "
                f"{problem.name!r}"
            )
        family = compatible[0].family
    return problem, algorithm, family


def implicit_instance(family, param):
    """The :class:`~repro.model.implicit.InstanceSpec` for ``--implicit``.

    Shared by ``repro run`` and ``repro mc``: checks the family's
    ``implicit`` capability (with an error naming the families that have
    one) and validates the parameter eagerly, so bad ``--param`` values
    fail here instead of deep inside a backend.
    """
    from repro.model.implicit import InstanceSpec

    if not family.implicit:
        names = ", ".join(f.name for f in FAMILIES if f.implicit)
        raise RegistryError(
            f"family {family.name!r} has no implicit generator "
            f"(implicit-capable families: {names})"
        )
    spec = InstanceSpec(family.name, param)
    spec.n  # builds the generator: bad params raise ValueError here
    return spec


# ----------------------------------------------------------------------
# repro list
# ----------------------------------------------------------------------
def _list_payload() -> Dict[str, List[Dict[str, object]]]:
    from repro.suites import SUITES

    load_components()
    return {
        "problems": [
            {
                "name": entry.name,
                "class": entry.cls.__name__,
                "tags": list(entry.tags),
                "description": entry.description,
            }
            for entry in PROBLEMS
        ],
        "algorithms": [
            {
                "name": entry.name,
                "problem": entry.problem,
                "randomized": entry.randomized,
                "seed": entry.seed,
                "families": None
                if entry.families is None
                else list(entry.families),
                "description": entry.description,
            }
            for entry in ALGORITHMS
        ],
        "families": [
            {
                "name": entry.name,
                "problems": list(entry.problems),
                "quick": [repr(p) for p in entry.quick],
                "full": [repr(p) for p in entry.full],
                "n_range": list(entry.n_range),
                "implicit": entry.implicit,
                "description": entry.description,
            }
            for entry in FAMILIES
        ],
        "adversaries": [
            {
                "name": entry.name,
                "problem": entry.problem,
                "bound": entry.bound,
                "victim": entry.victim,
                "quick": [repr(p) for p in entry.quick],
                "full": [repr(p) for p in entry.full],
                "expected_fit": list(entry.expected_fit),
                "description": entry.description,
            }
            for entry in ADVERSARIES
        ],
        "suites": [
            {"name": d.name, "description": d.description}
            for d in SUITES.values()
        ],
    }


def cmd_list(args: argparse.Namespace) -> int:
    payload = _list_payload()
    kinds = (
        ["problems", "algorithms", "families", "adversaries", "suites"]
        if args.kind == "all"
        else [args.kind]
    )
    if args.json:
        print(json.dumps({k: payload[k] for k in kinds}, indent=2))
        return 0
    if "problems" in kinds:
        print(f"PROBLEMS ({len(payload['problems'])})")
        print(format_table(
            ["name", "class", "description"],
            [[p["name"], p["class"], p["description"]]
             for p in payload["problems"]],
        ))
        print()
    if "algorithms" in kinds:
        print(f"ALGORITHMS ({len(payload['algorithms'])})")
        print(format_table(
            ["name", "problem", "randomized", "seed"],
            [[a["name"], a["problem"],
              "yes" if a["randomized"] else "no", a["seed"]]
             for a in payload["algorithms"]],
        ))
        print()
    if "families" in kinds:
        print(f"FAMILIES ({len(payload['families'])})")
        print(format_table(
            ["name", "problems", "quick grid", "n range", "implicit"],
            [[f["name"], ",".join(f["problems"]),
              " ".join(f["quick"]),
              "{}..{}".format(*f["n_range"]),
              "yes" if f["implicit"] else ""]
             for f in payload["families"]],
        ))
        print()
    if "adversaries" in kinds:
        print(f"ADVERSARIES ({len(payload['adversaries'])})")
        print(format_table(
            ["name", "problem", "bound", "victim", "quick grid"],
            [[a["name"], a["problem"], a["bound"], a["victim"],
              " ".join(a["quick"])]
             for a in payload["adversaries"]],
        ))
        print()
    if "suites" in kinds:
        print(f"SUITES ({len(payload['suites'])})")
        print(format_table(
            ["name", "description"],
            [[s["name"], s["description"]] for s in payload["suites"]],
        ))
    return 0


# ----------------------------------------------------------------------
# repro run
# ----------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.exec.backends import get_backend
    from repro.model.runner import solve_and_check

    load_components()
    # One ExitStack owns any backend this handler constructs, so every
    # early-exit error path below still releases pool resources (a
    # leaked ProcessPoolExecutor races interpreter teardown).
    with ExitStack() as stack:
        try:
            problem, algorithm, family = resolve_cell(
                args.algorithm, args.family, args.problem
            )
            backend = get_backend(args.backend)
        except (RegistryError, ValueError) as exc:
            return _fail(str(exc))
        stack.callback(backend.close)
        param = (
            parse_param(args.param)
            if args.param is not None
            else family.quick[-1]
        )
        seed = algorithm.seed if args.seed is None else args.seed
        try:
            if args.implicit:
                instance = implicit_instance(family, param)
            else:
                instance = family.instance(param)
        except RegistryError as exc:
            return _fail(str(exc))
        except Exception as exc:  # bad --param values surface here
            return _fail(
                f"family {family.name!r} rejected param {param!r}: {exc}"
            )
        started = time.perf_counter()
        report = solve_and_check(
            problem.make(),
            instance,
            algorithm.make(),
            seed=seed,
            max_volume=args.max_volume,
            max_queries=args.max_queries,
            backend=backend,
        )
        elapsed = time.perf_counter() - started
    payload = {
        "algorithm": algorithm.name,
        "problem": problem.name,
        "family": family.name,
        "param": repr(param),
        "instance": instance.name,
        "n": instance.n,
        "implicit": bool(args.implicit),
        "seed": seed,
        "backend": args.backend or "serial",
        "valid": report.valid,
        "max_volume": report.run.max_volume,
        "mean_volume": report.run.mean_volume,
        "max_distance": report.run.max_distance,
        "max_queries": report.run.max_queries,
        "truncated_nodes": len(report.run.truncated_nodes),
        "violations": [str(v) for v in report.violations[:5]],
        "elapsed": elapsed,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        verdict = "VALID" if report.valid else "INVALID"
        print(
            f"{algorithm.name} on {instance.name} "
            f"(n={payload['n']}, seed={seed}, "
            f"backend={payload['backend']}): {verdict}"
        )
        print(
            f"  max volume {payload['max_volume']}  "
            f"mean volume {payload['mean_volume']:.1f}  "
            f"max distance {payload['max_distance']}  "
            f"max queries {payload['max_queries']}  "
            f"({elapsed:.2f}s)"
        )
        for line in payload["violations"]:
            print(f"  violation: {line}")
    return 0 if report.valid else 1


# ----------------------------------------------------------------------
# repro sweep
# ----------------------------------------------------------------------
def _spec_from_dict(entry: Dict[str, object]):
    """Build a SweepSpec from one spec-file dictionary."""
    from repro.exec.sweep import SweepSpec
    from repro.suites import root_only

    for required in ("family", "algorithm"):
        if required not in entry:
            raise ValueError(f"sweep spec is missing the {required!r} key")
    family_entry = FAMILIES.get(str(entry["family"]))
    algorithm = ALGORITHMS.get(str(entry["algorithm"]))
    grid = str(entry.get("grid", "quick"))
    params = entry.get("params")
    implicit = bool(entry.get("implicit", False))
    if implicit:
        from repro.exec.sweep import InstanceFamily
        from repro.model.implicit import ImplicitFamilyFactory

        if not family_entry.implicit:
            names = ", ".join(f.name for f in FAMILIES if f.implicit)
            raise ValueError(
                f"family {family_entry.name!r} has no implicit generator "
                f"(implicit-capable families: {names})"
            )
        family = InstanceFamily(
            f"{family_entry.name}[implicit]",
            ImplicitFamilyFactory(family_entry.name),
            list(params) if params is not None
            else family_entry.params(grid),
        )
    elif params is not None:
        from repro.exec.sweep import InstanceFamily

        family = InstanceFamily(
            family_entry.name, family_entry.factory, list(params)
        )
    else:
        family = family_entry.instance_family(grid)
    nodes = entry.get("nodes", "all")
    if nodes not in ("all", "root"):
        raise ValueError(f"unknown nodes policy {nodes!r} (all/root)")
    return SweepSpec(
        label=str(entry.get("label", f"{algorithm.name} @ {family.name}")),
        claimed=str(entry.get("claimed", "-")),
        family=family,
        metric=str(entry.get("metric", "volume")),
        algorithm_factory=algorithm.factory,
        nodes=root_only if nodes == "root" else None,
        seed=int(entry.get("seed", algorithm.seed)),
        candidates=entry.get("candidates"),
    )


def _sweep_results_payload(results) -> List[Dict[str, object]]:
    payload = []
    for result in results:
        fitted = result.fitted()
        payload.append({
            "label": result.spec.label,
            "claimed": result.spec.claimed,
            "ns": result.ns,
            "costs": result.costs,
            "fit": fitted.best,
            "multiplier": fitted.multiplier,
            "from_cache": result.from_cache,
            "from_store": result.from_store,
        })
    return payload


def cmd_sweep(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.corpus import ResultStore, ResultStoreError
    from repro.exec.backends import get_backend
    from repro.exec.sweep import cache_from_env, run_sweeps
    from repro.faults.journal import JournalError
    from repro.suites import run_suite

    load_components()
    cache = cache_from_env()
    progress = print if args.progress else None
    printer = None if args.json else print
    if args.seed is not None and not (args.family and args.algorithm):
        return _fail(
            "--seed only applies to ad-hoc --family/--algorithm sweeps; "
            "named suites and spec-file entries pin their own seeds"
        )
    if args.journal and args.suites:
        return _fail(
            "--journal applies to --spec-file and ad-hoc "
            "--family/--algorithm sweeps (named suites manage their own "
            "execution); point it at one of those"
        )
    results = []
    # One ExitStack owns the backend across every early-exit error path
    # below (a string spec like process:2 constructs a pool here; before
    # the stack, a _fail return between construction and the sweep body
    # leaked it).
    with ExitStack() as stack:
        try:
            backend = get_backend(args.backend)
        except ValueError as exc:
            return _fail(str(exc))
        stack.callback(backend.close)
        try:
            store = ResultStore(args.store) if args.store else None
        except ResultStoreError as exc:
            return _fail(str(exc))
        try:
            if args.suites:
                for name in args.suites:
                    results.extend(run_suite(
                        name,
                        backend=backend,
                        cache=cache,
                        progress=progress,
                        printer=printer,
                        store=store,
                    ))
            elif args.spec_file:
                with open(args.spec_file) as handle:
                    entries = json.load(handle)
                if not isinstance(entries, list):
                    raise ValueError(
                        "spec file must hold a JSON list of specs"
                    )
                specs = [_spec_from_dict(e) for e in entries]
                results = run_sweeps(
                    specs, backend, cache=cache, progress=progress,
                    journal=args.journal, store=store,
                )
                if printer is not None:
                    for result in results:
                        printer(result.format_row())
            elif args.family and args.algorithm:
                spec = _spec_from_dict({
                    "family": args.family,
                    "algorithm": args.algorithm,
                    "metric": args.metric,
                    "grid": args.grid,
                    "implicit": args.implicit,
                    **({} if args.seed is None else {"seed": args.seed}),
                })
                results = run_sweeps(
                    [spec], backend, cache=cache, progress=progress,
                    journal=args.journal, store=store,
                )
                if printer is not None:
                    for result in results:
                        printer(result.format_row())
            else:
                return _fail(
                    "nothing to sweep: give suite names, --spec-file, or "
                    "--family with --algorithm (see `repro list` for names)"
                )
        except (
            RegistryError, ValueError, OSError, JournalError,
            ResultStoreError,
        ) as exc:
            return _fail(str(exc))
    if args.json:
        print(json.dumps(_sweep_results_payload(results), indent=2))
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from repro.cli.adversary import add_adversary_arguments
    from repro.cli.bench import add_bench_arguments
    from repro.cli.chaos import add_chaos_arguments
    from repro.cli.corpus import add_corpus_arguments
    from repro.cli.mc import add_mc_arguments
    from repro.cli.serve import add_serve_arguments

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Registry-driven CLI for the Rosenbaum-Suomela volume-"
            "complexity reproduction."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list", help="enumerate registered components and suites"
    )
    p_list.add_argument(
        "--kind",
        choices=[
            "problems",
            "algorithms",
            "families",
            "adversaries",
            "suites",
            "all",
        ],
        default="all",
    )
    p_list.add_argument("--json", action="store_true")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser(
        "run", help="solve-and-check one algorithm on one instance by name"
    )
    p_run.add_argument("algorithm", help="registered algorithm name")
    p_run.add_argument("--problem", help="assert which problem is solved")
    p_run.add_argument(
        "--family", help="instance family (default: first compatible)"
    )
    p_run.add_argument(
        "--param",
        help="grid parameter, e.g. 5 or '(3, 2)' "
        "(default: largest quick-grid entry)",
    )
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument(
        "--implicit", action="store_true",
        help="serve the instance from its implicit generator "
        "(implicit-capable families only; nodes realized on demand)",
    )
    p_run.add_argument(
        "--backend", help="serial | batch | process[:N] (default serial)"
    )
    p_run.add_argument("--max-volume", type=int, default=None)
    p_run.add_argument("--max-queries", type=int, default=None)
    p_run.add_argument("--json", action="store_true")
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="run named suites, a spec file, or an ad-hoc sweep"
    )
    p_sweep.add_argument(
        "suites", nargs="*", help="suite names (see `repro list`)"
    )
    p_sweep.add_argument("--spec-file", help="JSON file with a list of specs")
    p_sweep.add_argument("--family")
    p_sweep.add_argument("--algorithm")
    p_sweep.add_argument(
        "--metric", choices=["volume", "distance", "queries"],
        default="volume",
    )
    p_sweep.add_argument("--grid", choices=["quick", "full"], default="quick")
    p_sweep.add_argument(
        "--implicit", action="store_true",
        help="serve ad-hoc sweep instances from the family's implicit "
        "generator (InstanceSpec per grid point, nodes on demand)",
    )
    p_sweep.add_argument("--seed", type=int, default=None)
    p_sweep.add_argument("--backend")
    p_sweep.add_argument(
        "--journal", metavar="PATH", default=None,
        help="crash-safe JSONL journal: completed grid points are "
        "appended durably and restored (not re-measured) when the same "
        "sweep batch resumes after an interruption",
    )
    p_sweep.add_argument(
        "--store", metavar="PATH", default=None,
        help="sqlite result store: every executed point is appended, "
        "and points already recorded for the same spec hash are served "
        "from it instead of re-executing",
    )
    p_sweep.add_argument("--progress", action="store_true")
    p_sweep.add_argument("--json", action="store_true")
    p_sweep.set_defaults(func=cmd_sweep)

    add_mc_arguments(sub)
    add_adversary_arguments(sub)
    add_chaos_arguments(sub)
    add_bench_arguments(sub)
    add_corpus_arguments(sub)
    add_serve_arguments(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
