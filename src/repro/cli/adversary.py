"""``repro adversary`` — run the lower-bound games from the command line.

* ``repro adversary run NAME`` — play one registered adversary at one
  budget point, verify the transcript/re-run conformance on the finished
  instance, and optionally save the canonical transcript JSON (the
  golden-file format under ``tests/adversary/golden/``);
* ``repro adversary sweep [NAME ...]`` — run budget grids for some (or
  all) registered adversaries, fit the measured query/bit curves, and
  gate them against each entry's expected Ω-class — the same records
  ``repro bench`` embeds as the artifact's ``lower_bounds`` section.

Exit codes: 0 success, 1 a lower bound failed to hold (or a fit
regressed), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
from typing import List

from repro.registry import ADVERSARIES, RegistryError, load_components


def _record_rows(record) -> List[List[str]]:
    rows = []
    for point in record["points"]:
        rows.append([
            record["adversary"],
            str(point["budget"]),
            str(point["n"]),
            str(point["queries"]),
            "-" if point["bits"] is None else str(point["bits"]),
            "yes" if point["upheld"] else "NO",
        ])
    return rows


def cmd_adversary_run(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.cli import _fail
    from repro.exec.backends import get_backend

    load_components()
    # The ExitStack owns the conformance re-run's backend, so a string
    # spec like process:2 is closed on every exit path (including the
    # _fail returns above a bare `backend.close()` would miss).
    with ExitStack() as stack:
        try:
            entry = ADVERSARIES.get(args.name)
            adversary = entry.make(args.algorithm)
            backend = get_backend(args.backend)
            stack.callback(backend.close)
            run = adversary.timed_run(
                entry.quick[-1] if args.budget is None else args.budget
            )
        except (RegistryError, ValueError) as exc:
            return _fail(str(exc))
        verified = adversary.verify(run, backend=backend)
    if args.transcript:
        with open(args.transcript, "w") as handle:
            handle.write(run.transcript.to_json())
    payload = {
        "adversary": entry.name,
        "problem": entry.problem,
        "bound": entry.bound,
        "algorithm": run.algorithm,
        **run.point(),
        "transcript_events": len(run.transcript),
        "verified": verified,
        "detail": {
            k: v
            for k, v in run.detail.items()
            if isinstance(v, (int, float, str, bool, type(None)))
        },
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        verdict = (
            "LOWER BOUND UPHELD" if run.upheld else "LOWER BOUND FAILED"
        )
        print(
            f"{entry.name} vs {run.algorithm} "
            f"(budget={payload['budget']}): {verdict}"
        )
        print(
            f"  bound: {entry.bound}"
        )
        print(
            f"  n={run.n}  queries={run.queries}"
            + ("" if run.bits is None else f"  bits={run.bits}")
            + f"  defeated={run.defeated}"
        )
        print(
            f"  transcript: {len(run.transcript)} events, replay+re-run "
            f"conformance {'ok' if verified else 'FAILED'} "
            f"({run.elapsed:.2f}s)"
        )
        if args.transcript:
            print(f"  transcript saved to {args.transcript}")
    return 0 if run.upheld and verified else 1


def cmd_adversary_sweep(args: argparse.Namespace) -> int:
    from repro.adversary.base import sweep_records
    from repro.cli import _fail, format_table

    load_components()
    try:
        entries = (
            [ADVERSARIES.get(name) for name in args.names]
            if args.names
            else list(ADVERSARIES)
        )
    except RegistryError as exc:
        return _fail(str(exc))
    progress = print if args.progress else None
    records = sweep_records(entries, args.grid, progress=progress)
    if args.json:
        print(json.dumps(records, indent=2))
        return 1 if any(not r["ok"] for r in records) else 0
    rows = []
    for record in records:
        rows.extend(_record_rows(record))
    print(format_table(
        ["adversary", "budget", "n", "queries", "bits", "upheld"], rows
    ))
    print()
    for record in records:
        fits = record["queries_fit"] or "-"
        if record["bits_fit"]:
            fits += f" (bits: {record['bits_fit']})"
        print(
            f"{record['adversary']:<28} {record['bound']:<44} "
            f"fitted {fits:<16} expected "
            f"{'/'.join(record['expected_fit'])}"
            f"  -> {'ok' if record['ok'] else 'FAIL'}"
        )
    return 1 if any(not r["ok"] for r in records) else 0


def add_adversary_arguments(sub) -> None:
    p_adv = sub.add_parser(
        "adversary",
        help="run the interactive lower-bound adversaries",
    )
    adv_sub = p_adv.add_subparsers(dest="adversary_command", required=True)

    p_run = adv_sub.add_parser(
        "run", help="play one adversary at one budget point and verify it"
    )
    p_run.add_argument("name", help="registered adversary name")
    p_run.add_argument(
        "--budget", type=int, default=None,
        help="budget-grid point (default: largest quick-grid entry)",
    )
    p_run.add_argument(
        "--algorithm", default=None,
        help="victim algorithm (default: the adversary's registered victim)",
    )
    p_run.add_argument(
        "--backend",
        help="backend for the conformance re-run "
        "(serial | reference | batch | process[:N])",
    )
    p_run.add_argument(
        "--transcript", metavar="PATH",
        help="save the canonical transcript JSON (golden-file format)",
    )
    p_run.add_argument("--json", action="store_true")
    p_run.set_defaults(func=cmd_adversary_run)

    p_sweep = adv_sub.add_parser(
        "sweep", help="sweep budget grids and gate the Ω-fits"
    )
    p_sweep.add_argument(
        "names", nargs="*",
        help="adversary names (default: all registered)",
    )
    p_sweep.add_argument(
        "--grid", choices=["quick", "full"], default="quick"
    )
    p_sweep.add_argument("--progress", action="store_true")
    p_sweep.add_argument("--json", action="store_true")
    p_sweep.set_defaults(func=cmd_adversary_sweep)
