"""``repro chaos`` — deterministic fault-injection verification by name.

Runs one registry cell under a seeded :class:`~repro.faults.plan.FaultPlan`
on a supervised :class:`~repro.exec.backends.ProcessPoolBackend` and
verifies the fault-tolerance contract end to end: the surviving result
must be **bitwise identical** to the fault-free serial run, and
``/dev/shm`` must be exactly as clean as before the run, no matter which
failure paths the plan exercised.  The plan is a pure value, so a
failing seed reproduces the exact same fault schedule on re-run.

``--quick`` runs the canned smoke matrix CI uses: both transports, two
plan seeds, whole-instance and trial-batch workloads.

Exit codes: 0 every report OK, 1 any divergence or shm residue,
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.registry import RegistryError, load_components


def _plan(args: argparse.Namespace, seed: int):
    from repro.faults.plan import FAULT_KINDS, FaultPlan

    kinds = FAULT_KINDS
    if args.kinds:
        kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    return FaultPlan(
        seed=seed,
        kinds=kinds,
        rate=args.rate,
        max_faults=args.max_faults,
        delay_s=args.delay,
        max_attempt=args.max_attempt,
    )


def _quick_matrix(args: argparse.Namespace):
    """The CI smoke matrix: transports × plan seeds × workloads."""
    from repro.faults.plan import FaultPlan

    jobs = []
    for transport in ("shm", "pickle"):
        for plan_seed in (1, 2):
            jobs.append(
                (
                    transport,
                    FaultPlan(
                        seed=plan_seed,
                        rate=0.5,
                        max_faults=3,
                        delay_s=args.delay,
                    ),
                    None,
                )
            )
    # One trial-batch workload per transport (the Monte-Carlo shape).
    jobs.append((("shm"), FaultPlan(seed=3, rate=0.5, max_faults=3,
                                    delay_s=args.delay), 12))
    jobs.append((("pickle"), FaultPlan(seed=4, rate=0.5, max_faults=3,
                                       delay_s=args.delay), 12))
    return jobs


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.cli import _fail, parse_param, resolve_cell
    from repro.faults.chaos import run_chaos

    load_components()
    try:
        problem, algorithm, family = resolve_cell(args.algorithm, args.family)
    except RegistryError as exc:
        return _fail(str(exc))
    param = (
        parse_param(args.param) if args.param is not None else family.quick[0]
    )
    try:
        instance = family.instance(param)
    except Exception as exc:  # bad --param values surface here
        return _fail(f"family {family.name!r} rejected param {param!r}: {exc}")
    seed = algorithm.seed if args.seed is None else args.seed
    if args.transport not in ("shm", "pickle", "both"):
        return _fail(
            f"unknown transport {args.transport!r} (shm|pickle|both)"
        )
    try:
        if args.quick:
            jobs = _quick_matrix(args)
        else:
            transports = (
                ("shm", "pickle")
                if args.transport == "both"
                else (args.transport,)
            )
            jobs = [
                (transport, _plan(args, plan_seed), args.trials)
                for transport in transports
                for plan_seed in range(
                    args.plan_seed, args.plan_seed + args.plans
                )
            ]
    except ValueError as exc:  # bad plan parameters (rate, kinds, ...)
        return _fail(str(exc))
    reports = []
    for transport, plan, trials in jobs:
        report = run_chaos(
            problem.make(),
            instance,
            algorithm.make(),
            plan=plan,
            workers=args.workers,
            transport=transport,
            seed=seed,
            trials=trials,
            chunk_size=args.chunk_size,
            timeout=args.timeout,
        )
        reports.append(report)
        if not args.json:
            print(report.format_line())
            if report.detail:
                print(f"      {report.detail}", file=sys.stderr)
    failed = [r for r in reports if not r.ok]
    if args.json:
        print(
            json.dumps(
                {
                    "algorithm": algorithm.name,
                    "instance": instance.name,
                    "n": instance.n,
                    "workers": args.workers,
                    "ok": not failed,
                    "reports": [r.to_payload() for r in reports],
                },
                indent=2,
            )
        )
    else:
        verdict = "OK" if not failed else "FAIL"
        print(
            f"chaos: {len(reports) - len(failed)}/{len(reports)} plans "
            f"survived with bitwise-equal results and clean shared "
            f"memory: {verdict}"
        )
    return 1 if failed else 0


def add_chaos_arguments(sub) -> None:
    p_chaos = sub.add_parser(
        "chaos",
        help="verify fault-tolerant execution under a seeded fault plan",
    )
    p_chaos.add_argument("algorithm", help="registered algorithm name")
    p_chaos.add_argument(
        "--family", help="instance family (default: first compatible)"
    )
    p_chaos.add_argument(
        "--param",
        help="grid parameter (default: smallest quick-grid entry)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=None,
        help="dispatch seed (default: the algorithm's registered seed)",
    )
    p_chaos.add_argument(
        "--workers", type=int, default=2,
        help="process-pool workers for the chaotic run (default 2)",
    )
    p_chaos.add_argument(
        "--transport", choices=["shm", "pickle", "both"], default="shm",
        help="instance transport(s) to torture (default shm)",
    )
    p_chaos.add_argument(
        "--chunk-size", type=int, default=2,
        help="chunk size — small values give faults distinct units to "
        "hit even on tiny instances (default 2)",
    )
    p_chaos.add_argument(
        "--trials", type=int, default=None,
        help="run a trial batch of this many solve-and-check trials "
        "instead of a whole-instance run",
    )
    p_chaos.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-chunk supervision timeout in seconds (default 10)",
    )
    p_chaos.add_argument(
        "--plan-seed", type=int, default=0,
        help="first fault-plan seed (default 0)",
    )
    p_chaos.add_argument(
        "--plans", type=int, default=1,
        help="number of consecutive plan seeds to run (default 1)",
    )
    p_chaos.add_argument(
        "--rate", type=float, default=0.25,
        help="per-(unit, attempt) injection probability (default 0.25)",
    )
    p_chaos.add_argument(
        "--max-faults", type=int, default=4,
        help="total fault budget per plan (default 4)",
    )
    p_chaos.add_argument(
        "--max-attempt", type=int, default=2,
        help="last attempt index faults may fire on (default 2)",
    )
    p_chaos.add_argument(
        "--delay", type=float, default=1.5,
        help="delay-chunk sleep in seconds (default 1.5)",
    )
    p_chaos.add_argument(
        "--kinds", default=None,
        help="comma-separated fault-kind subset (default: all kinds)",
    )
    p_chaos.add_argument(
        "--quick", action="store_true",
        help="the CI smoke matrix: shm+pickle transports, two plan "
        "seeds each, plus a trial-batch workload per transport",
    )
    p_chaos.add_argument("--json", action="store_true")
    p_chaos.set_defaults(func=cmd_chaos)
