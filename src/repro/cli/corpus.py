"""``repro corpus`` — manage the content-addressed instance corpus.

Five verbs over one corpus directory (see :mod:`repro.corpus`):

* ``generate`` — build a registered family's grid via the registry and
  store every instance under its content address;
* ``list`` — the manifest (and, with ``--store``, the sqlite result
  store's row counts);
* ``verify`` — re-hash every entry file against the manifest, exit 1
  on any mismatch, missing file, mis-filed key, or stray file;
* ``export`` / ``import`` — a deterministic ``.tar.gz`` round trip:
  export refuses an unverifiable corpus, import re-hashes every entry
  before accepting anything.

Exit codes: 0 success, 1 verification failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
from typing import List

from repro.registry import FAMILIES, RegistryError, load_components


def cmd_corpus(args: argparse.Namespace) -> int:
    from repro.cli import _fail
    from repro.corpus import CorpusError, InstanceCorpus

    corpus = InstanceCorpus(args.root)
    try:
        handler = {
            "generate": _corpus_generate,
            "list": _corpus_list,
            "verify": _corpus_verify,
            "export": _corpus_export,
            "import": _corpus_import,
        }[args.action]
        return handler(corpus, args)
    except (CorpusError, RegistryError, OSError, ValueError) as exc:
        return _fail(str(exc))


def _corpus_generate(corpus, args: argparse.Namespace) -> int:
    from repro.cli import parse_param

    load_components()
    if args.families:
        names = list(args.families)
    else:
        names = [entry.name for entry in FAMILIES]
    params = (
        None
        if not args.params
        else [parse_param(text) for text in args.params]
    )
    if params is not None and len(names) != 1:
        raise ValueError(
            "--param applies to exactly one family; name it explicitly"
        )
    progress = print if args.progress else None
    stored = skipped = 0
    for name in names:
        for _, created in corpus.generate(
            name,
            grid=args.grid,
            params=params,
            seed=args.seed,
            progress=progress,
        ):
            if created:
                stored += 1
            else:
                skipped += 1
    print(
        f"corpus {corpus.root}: {stored} entr"
        f"{'y' if stored == 1 else 'ies'} stored, {skipped} already "
        "present"
    )
    return 0


def _corpus_list(corpus, args: argparse.Namespace) -> int:
    from repro.cli import format_table

    entries = corpus.list_entries()
    payload = {
        "root": str(corpus.root),
        "entries": [
            {
                "key": e.key,
                "family": e.family,
                "param": e.param_repr,
                "seed": e.seed,
                "n": e.n,
                "name": e.name,
                "content_hash": e.content_hash,
                "created_at": e.created_at,
            }
            for e in entries
        ],
    }
    if args.store:
        from repro.corpus import ResultStore

        payload["store"] = ResultStore(args.store).summary()
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"CORPUS {corpus.root} ({len(entries)} entries)")
    if entries:
        print(format_table(
            ["key", "family", "param", "seed", "n", "content hash"],
            [[e.key, e.family, e.param_repr, e.seed, e.n,
              e.content_hash[:16] + "..."] for e in entries],
        ))
    if "store" in payload:
        counts = payload["store"]
        print(
            f"STORE {args.store}: {counts['sweeps']} sweeps / "
            f"{counts['sweep_points']} points, {counts['trial_runs']} "
            f"trial runs / {counts['trials']} trials"
        )
    return 0


def _corpus_verify(corpus, args: argparse.Namespace) -> int:
    problems: List[str] = corpus.verify()
    count = len(corpus.list_entries())
    if args.json:
        print(json.dumps({
            "root": str(corpus.root),
            "entries": count,
            "ok": not problems,
            "problems": problems,
        }, indent=2))
    else:
        for line in problems:
            print(f"corpus verify: {line}")
        verdict = "OK" if not problems else f"{len(problems)} problem(s)"
        print(f"corpus {corpus.root}: {count} entries, {verdict}")
    return 0 if not problems else 1


def _corpus_export(corpus, args: argparse.Namespace) -> int:
    count = corpus.export(args.archive)
    print(f"exported {count} entries to {args.archive}")
    return 0


def _corpus_import(corpus, args: argparse.Namespace) -> int:
    imported, skipped = corpus.import_archive(args.archive)
    print(
        f"imported {imported} entr{'y' if imported == 1 else 'ies'} "
        f"into {corpus.root}, {skipped} already present"
    )
    return 0


def add_corpus_arguments(sub) -> None:
    p_corpus = sub.add_parser(
        "corpus",
        help="generate, inspect, verify, and exchange instance corpora",
    )
    p_corpus.add_argument(
        "action",
        choices=["generate", "list", "verify", "export", "import"],
    )
    p_corpus.add_argument(
        "--root", default="corpus",
        help="corpus directory (default ./corpus)",
    )
    p_corpus.add_argument(
        "--family", dest="families", action="append", default=[],
        metavar="NAME",
        help="family to generate (repeatable; default: every registered "
        "family)",
    )
    p_corpus.add_argument(
        "--grid", choices=["quick", "full"], default="quick",
        help="parameter grid to generate (default quick)",
    )
    p_corpus.add_argument(
        "--param", dest="params", action="append", default=[],
        metavar="PARAM",
        help="explicit grid parameter (repeatable; needs exactly one "
        "--family)",
    )
    p_corpus.add_argument(
        "--seed", type=int, default=0,
        help="generation seed recorded in each entry's address "
        "(default 0)",
    )
    p_corpus.add_argument(
        "--archive", default="corpus.tar.gz",
        help="archive path for export/import (default corpus.tar.gz)",
    )
    p_corpus.add_argument(
        "--store", metavar="PATH", default=None,
        help="with `list`: also summarize this sqlite result store",
    )
    p_corpus.add_argument("--progress", action="store_true")
    p_corpus.add_argument("--json", action="store_true")
    p_corpus.set_defaults(func=cmd_corpus)


__all__ = ["add_corpus_arguments", "cmd_corpus"]
