"""``repro serve`` / ``repro load`` — the service and its load harness.

* ``repro serve`` — run the asyncio HTTP/JSON service in the foreground
  (Ctrl-C to stop): the registry behind ``POST /solve``, ``POST /mc``,
  ``POST /adversary`` and ``GET /registry|/healthz|/stats``, with
  micro-batched execution, store-backed response caching, and 429
  backpressure (see :mod:`repro.serve`);
* ``repro load`` — drive a running server with the deterministic load
  generator and gate the measured numbers (p99 latency ceiling,
  requests/sec floor, bitwise-identical cache-served repeats), printing
  or writing the same report the bench artifact embeds as its
  ``serving`` section.

Exit codes: 0 success, 1 a load gate failed, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path
from typing import Dict, Optional


def _serve_config(args: argparse.Namespace):
    from repro.serve.service import ServeConfig

    return ServeConfig(
        host=args.host,
        port=args.port,
        backend=args.backend or "batch",
        store=args.store,
        queue_limit=args.queue_limit,
        batch_window=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        default_deadline=args.deadline,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.cli import _fail
    from repro.serve.service import run_server

    try:
        config = _serve_config(args)
        return run_server(config)
    except (ValueError, OSError) as exc:
        return _fail(str(exc))


def _load_config(args: argparse.Namespace):
    from repro.serve.load import LoadConfig

    base = LoadConfig()
    if args.quick:
        # The CI preset: small unique set, both probe kinds, and the
        # cache/latency gates armed — the numbers BENCH_repro.json and
        # the serve-smoke job gate on.
        base = LoadConfig(
            requests=24,
            concurrency=4,
            deadline_probes=2,
            burst_probes=16,
            require_cache=True,
        )
    return LoadConfig(
        host=args.host,
        port=args.port,
        requests=args.requests or base.requests,
        concurrency=args.concurrency or base.concurrency,
        mode=args.mode,
        rate=args.rate,
        seed=base.seed if args.seed is None else args.seed,
        deadline_probes=(
            base.deadline_probes
            if args.deadline_probes is None
            else args.deadline_probes
        ),
        burst_probes=(
            base.burst_probes
            if args.burst_probes is None
            else args.burst_probes
        ),
        p99_gate_ms=args.p99_gate,
        min_rps=args.min_rps,
        require_cache=base.require_cache or args.require_cache,
    )


def _print_report(report, printer=print) -> None:
    from repro.cli import format_table

    rows = []
    for phase in report.phases:
        latency = phase.latency_ms()
        rows.append([
            phase.name,
            phase.requests,
            f"{phase.rps:.1f}",
            _ms(latency["p50"]),
            _ms(latency["p95"]),
            _ms(latency["p99"]),
            f"{phase.store_hits}/{phase.requests}",
        ])
    printer(format_table(
        ["phase", "reqs", "req/s", "p50 ms", "p95 ms", "p99 ms", "hits"],
        rows,
    ))
    for name, counts in report.probes.items():
        printer(f"probe {name}: {counts}")
    printer(
        f"repeat phase: identical={report.repeat_identical} "
        f"new_executions={report.repeat_executions} "
        f"batches={report.batch_histogram}"
    )
    for failure in report.failures:
        printer(f"GATE FAILED: {failure}")
    printer("load: ok" if report.ok else "load: FAILED")


def _ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}"


def cmd_load(args: argparse.Namespace) -> int:
    from repro.cli import _fail
    from repro.serve.load import run_load

    try:
        config = _load_config(args)
        report = run_load(config)
    except (ValueError, OSError, ConnectionError) as exc:
        return _fail(str(exc))
    payload = report.to_payload()
    payload["config"] = {
        "requests": config.requests,
        "concurrency": config.concurrency,
        "mode": config.mode,
        "seed": config.seed,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        _print_report(report)
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# the bench artifact's serving section
# ----------------------------------------------------------------------
def serving_record(
    progress=None, store_dir: Optional[str] = None
) -> Dict[str, object]:
    """Measure the service for ``BENCH_repro.json``'s ``serving`` section.

    Spins a store-backed server on an ephemeral port in-process, runs
    the quick load preset against it (cold + repeat phases, deadline and
    burst probes, cache gates armed), and returns the artifact record —
    so every committed artifact carries measured p50/p99, requests/sec,
    the batch-size histogram, and a repeat phase proving the store
    served bitwise-identical responses with zero new executions.
    """
    from repro.serve.load import LoadConfig, run_load
    from repro.serve.service import ServeConfig, ServerThread

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        store = (
            str(Path(store_dir) / "serve_store.sqlite")
            if store_dir
            else str(Path(tmp) / "serve_store.sqlite")
        )
        server_config = ServeConfig(port=0, backend="batch", store=store)
        with ServerThread(server_config) as server:
            host, port = server.address
            if progress is not None:
                progress(f"  serving: measuring http://{host}:{port}")
            load_config = LoadConfig(
                host=host,
                port=port,
                requests=24,
                concurrency=4,
                deadline_probes=2,
                burst_probes=16,
                require_cache=True,
            )
            report = run_load(load_config)
    payload = report.to_payload()
    payload["config"] = {
        "backend": server_config.backend,
        "queue_limit": server_config.queue_limit,
        "batch_window": server_config.batch_window,
        "max_batch": server_config.max_batch,
        "requests": load_config.requests,
        "concurrency": load_config.concurrency,
        "mode": load_config.mode,
        "seed": load_config.seed,
    }
    if progress is not None:
        repeat = report.phases[-1]
        latency = repeat.latency_ms()
        progress(
            f"  serving: {repeat.rps:.1f} req/s warm, "
            f"p50 {_ms(latency['p50'])}ms p99 {_ms(latency['p99'])}ms, "
            f"{repeat.store_hits}/{repeat.requests} store hits "
            f"({'ok' if report.ok else 'FAIL'})"
        )
    return payload


def add_serve_arguments(sub) -> None:
    p_serve = sub.add_parser(
        "serve",
        help="run the async solve-and-check HTTP service (Ctrl-C to stop)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8437,
        help="TCP port (0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--backend",
        help="shared execution backend: serial | batch | process[:N] "
        "(default batch, the oracle-caching one)",
    )
    p_serve.add_argument(
        "--store", metavar="PATH", default=None,
        help="sqlite result store used as the response cache: repeats "
        "of any request are served from it bitwise-identically with "
        "zero new executions",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission queue bound; a full queue returns 429 + "
        "Retry-After (default 64)",
    )
    p_serve.add_argument(
        "--batch-window-ms", type=float, default=5.0,
        help="micro-batch collection window in milliseconds (default 5)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=8,
        help="max requests per dispatched batch (default 8)",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=30.0,
        help="default per-request deadline in seconds; expiry returns "
        "504 while the computation finishes into the cache (default 30)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "load",
        help="drive a running repro serve with the deterministic "
        "load harness and gate the measured numbers",
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=8437)
    p_load.add_argument(
        "--requests", type=int, default=None,
        help="unique descriptors per phase (default 32; 24 under --quick)",
    )
    p_load.add_argument(
        "--concurrency", type=int, default=None,
        help="closed-loop workers / open-loop connection pool (default 4)",
    )
    p_load.add_argument(
        "--mode", choices=["closed", "open"], default="closed",
        help="closed: next request on response; open: fixed-rate "
        "arrival schedule (latency includes queueing)",
    )
    p_load.add_argument(
        "--rate", type=float, default=50.0,
        help="open-loop arrivals per second (default 50)",
    )
    p_load.add_argument(
        "--seed", type=int, default=None,
        help="mix seed: same seed + same registry = byte-identical "
        "request stream (default 1543)",
    )
    p_load.add_argument(
        "--deadline-probes", type=int, default=None,
        help="requests fired with microscopic deadlines, expecting "
        "clean 504s (default 2)",
    )
    p_load.add_argument(
        "--burst-probes", type=int, default=None,
        help="concurrent fresh requests fired at once to probe 429 "
        "backpressure (default 0; 16 under --quick)",
    )
    p_load.add_argument(
        "--p99-gate", type=float, default=None, metavar="MS",
        help="fail if the repeat-phase p99 latency exceeds this",
    )
    p_load.add_argument(
        "--min-rps", type=float, default=None,
        help="fail if repeat-phase throughput falls below this",
    )
    p_load.add_argument(
        "--require-cache", action="store_true",
        help="fail unless every repeat-phase response is a store hit "
        "and the server performed zero new executions",
    )
    p_load.add_argument(
        "--quick", action="store_true",
        help="the CI preset: 24 requests, both probe kinds, cache "
        "gates armed",
    )
    p_load.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON report here",
    )
    p_load.add_argument("--json", action="store_true")
    p_load.set_defaults(func=cmd_load)
