"""``repro bench`` — the registry-enumerated smoke matrix and artifact.

Runs every compatible problem x algorithm x family cell of the component
registry (nothing is hand-listed: the matrix comes from
:func:`repro.registry.iter_compatible`) through the sweep orchestrator,
validating each grid point with the same
:func:`~repro.model.runner.solve_and_check` call the API exposes, and
writes a schema-versioned machine-readable artifact::

    {
      "schema": "repro-bench",
      "schema_version": 2,
      "mode": "quick" | "full",
      "backend": "serial" | "process:N" | "batch" | "reference",
      "oracle": "compiled" | "reference",
      "git_sha": "...", "python": "3.x.y", "generated": "...Z",
      "cells": [
        {
          "problem": ..., "algorithm": ..., "family": ..., "seed": ...,
          "randomized": ..., "ok": ...,
          "points": [{"param", "n", "valid", "max_volume", "mean_volume",
                      "max_distance", "max_queries", "truncated_nodes",
                      "violations", "executions", "elapsed",
                      "execs_per_sec"}, ...],
          "max_volume": ..., "mean_volume": ..., "max_distance": ...,
          "volume_fit": ..., "distance_fit": ...,
          "executions": ..., "wall_time": ..., "execs_per_sec": ...,
          "elapsed": ...   (schema-v1 alias, always == wall_time)
        }, ...
      ],
      "lower_bounds": [
        {
          "adversary": ..., "problem": ..., "algorithm": ..., "bound": ...,
          "expected_fit": [...],
          "points": [{"budget", "n", "queries", "bits", "defeated",
                      "upheld", "elapsed"}, ...],
          "queries_fit": ..., "bits_fit": ..., "ok": ..., "wall_time": ...
        }, ...
      ],
      "summary": {"cells", "points", "failed", "executions",
                  "wall_time", "execs_per_sec", "elapsed",
                  "lower_bounds", "lower_bounds_failed"}
    }

Schema v2 (PR 3) added the timing trajectory: per-point and per-cell
wall-clock plus executions/sec (one "execution" = one per-node run of
the algorithm), and the oracle mode the numbers were measured under —
so later perf PRs have a committed baseline to be judged against.

Schema v3 (PR 4) added the ``lower_bounds`` section: every registered
interactive adversary is swept over its quick/full budget grid, the
measured query (and, for two-party games, bit) counts are fitted
against the growth classes of :mod:`repro.analysis.complexity_fit`,
and a record is "ok" only when every point upheld the lower-bound
dichotomy *and* the fitted class is one the registration expects
(Ω(n) for all three paper adversaries).

Schema v4 (PR 5) added the ``monte_carlo`` section: every matrix cell
is estimated twice by the streaming trial engine at its smallest grid
point — once fixed-count (``early_stop=off``, the legacy semantics)
and once adaptive — and a record is "ok" only when the two reach the
same success verdict, the adaptive run's verdict sequence is a prefix
of the fixed run's (the engine's determinism contract), and it spent
no more trials.  ``summary.monte_carlo`` totals the fixed vs adaptive
trial counts, so the committed artifact documents the saving.  A
formal JSON-schema for the artifact ships at
``repro/cli/schemas/bench-v4.schema.json``; :func:`upgrade_artifact`
reads older artifacts forward (v3 → v4 adds an empty ``monte_carlo``
section).

Schema v5 (PR 7) added the ``implicit_scaling`` section: every
implicit-capable family (``FamilyEntry.implicit``) is checked
node-for-node against its materialized factory at the largest
quick-grid parameter (NodeInfo tables and resolve responses must
agree exactly), then probed at a giant parameter (n >= 10^7) through
the bounded-memory :class:`~repro.model.implicit.ImplicitOracle` —
stride-sampled node ids are checked for degree/port/back-edge
self-consistency — and, where the family has a registered sublinear
sweep algorithm, a volume curve is fitted across growing n.  The
formal schema moves to ``bench-v5.schema.json``; the v4 → v5 upgrade
adds an empty ``implicit_scaling`` section.

PR 9 added the optional ``summary.corpus`` counters (still schema v5 —
the field is additive): under ``--corpus DIR`` each matrix cell's
instances load from the content-addressed corpus where present, and
the artifact records the hit/miss split (``root`` is null when no
corpus was given).

Schema v6 (PR 10) added the ``serving`` section: a store-backed
``repro serve`` instance is spun up in-process on an ephemeral port and
measured by the deterministic load harness (:mod:`repro.serve.load`) —
cold and repeat phases with p50/p95/p99 latency and requests/sec, the
batch-size histogram, deliberate 504-deadline and 429-burst probes,
and the cache gates (every repeat response a bitwise-identical store
hit, zero new executions).  ``serving`` is null under ``--no-serve``;
the v5 → v6 upgrade adds the null section.  The formal schema moves to
``bench-v6.schema.json``.

CI's ``bench-smoke`` job runs ``repro bench --quick`` on the serial and
``process:2`` backends, uploads the artifact, and fails on any invalid
cell (non-zero exit); the ``adversary-smoke``, ``mc-smoke``, and
``implicit-smoke`` jobs gate the ``lower_bounds``, ``monte_carlo``,
and ``implicit_scaling`` sections the same way (the latter under a
peak-RSS bound).
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.registry import (
    ADVERSARIES,
    MatrixCell,
    iter_compatible,
    load_components,
)

SCHEMA_NAME = "repro-bench"
SCHEMA_VERSION = 6
SCHEMA_DOCUMENT = Path(__file__).parent / "schemas" / "bench-v6.schema.json"

# The Monte-Carlo section's policies: the adaptive run is the shared
# QUICK_POLICY preset (the same one `repro mc --quick` uses, by
# construction — see repro.montecarlo.engine), the fixed run is the
# legacy semantics at the preset's trial budget.  A cell's success
# verdict is "rate >= MC_VERDICT_THRESHOLD".
MC_VERDICT_THRESHOLD = 0.9


def _mc_policies():
    from repro.montecarlo.engine import QUICK_POLICY, TrialPolicy

    return TrialPolicy.fixed(QUICK_POLICY.max_trials), QUICK_POLICY


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _fit(ns: List[int], costs: List[float]) -> Optional[str]:
    from repro.analysis.complexity_fit import fit_growth

    if len(ns) < 2:
        return None
    return fit_growth(ns, costs).best


def _corpus_family(corpus, entry, grid: str, counters: Dict[str, int]):
    """An :class:`InstanceFamily` served from a corpus where possible.

    Grid points present in the corpus load from disk (a *hit*); absent
    points fall back to the registered factory (a *miss*) — the cell
    runs either way, the counters just record the provenance split for
    ``summary.corpus``.
    """
    from repro.exec.sweep import InstanceFamily

    def factory(param):
        instance = corpus.get(entry.name, param)
        if instance is not None:
            counters["hits"] += 1
            return instance
        counters["misses"] += 1
        return entry.factory(param)

    return InstanceFamily(entry.name, factory, entry.params(grid))


def run_cell(
    cell: MatrixCell,
    grid: str,
    backend,
    seed: Optional[int] = None,
    progress=None,
    corpus=None,
    corpus_counters: Optional[Dict[str, int]] = None,
) -> Dict[str, object]:
    """Solve-and-check one matrix cell over its parameter grid."""
    from repro.exec.sweep import SweepSpec, run_sweep
    from repro.model.runner import solve_and_check

    problem = cell.problem.make()
    cell_seed = cell.algorithm.seed if seed is None else seed
    points: List[Dict[str, object]] = []

    def measure(instance, param) -> float:
        report = solve_and_check(
            problem,
            instance,
            cell.algorithm.make(),
            seed=cell_seed,
            backend=backend,
        )
        points.append({
            "param": repr(param),
            "n": instance.graph.num_nodes,
            "valid": report.valid,
            "max_volume": report.run.max_volume,
            "mean_volume": report.run.mean_volume,
            "max_distance": report.run.max_distance,
            "max_queries": report.run.max_queries,
            "truncated_nodes": len(report.run.truncated_nodes),
            "violations": [str(v) for v in report.violations[:3]],
            "executions": len(report.run.profiles),
        })
        return float(report.run.max_volume)

    family = (
        cell.family.instance_family(grid)
        if corpus is None
        else _corpus_family(corpus, cell.family, grid, corpus_counters)
    )
    spec = SweepSpec(
        label=f"{cell.algorithm.name} @ {cell.family.name}",
        claimed="-",
        family=family,
        measure=measure,
    )
    result = run_sweep(spec, backend, progress=progress)
    for point, sweep_point in zip(points, result.points):
        point["elapsed"] = sweep_point.elapsed
        point["execs_per_sec"] = (
            point["executions"] / sweep_point.elapsed
            if sweep_point.elapsed > 0
            else None
        )
    ns = [p["n"] for p in points]
    executions = sum(p["executions"] for p in points)
    wall_time = sum(p["elapsed"] for p in points)
    return {
        "problem": cell.problem.name,
        "algorithm": cell.algorithm.name,
        "family": cell.family.name,
        "seed": cell_seed,
        "randomized": cell.algorithm.randomized,
        "ok": all(p["valid"] for p in points),
        "points": points,
        "max_volume": max(p["max_volume"] for p in points),
        "mean_volume": statistics.fmean(p["mean_volume"] for p in points),
        "max_distance": max(p["max_distance"] for p in points),
        "volume_fit": _fit(ns, [p["max_volume"] for p in points]),
        "distance_fit": _fit(ns, [p["max_distance"] for p in points]),
        "executions": executions,
        "wall_time": wall_time,
        "execs_per_sec": executions / wall_time if wall_time > 0 else None,
        "elapsed": wall_time,
    }


def _select_cells(only: Optional[str]) -> List[MatrixCell]:
    cells = list(iter_compatible())
    if only:
        cells = [c for c in cells if any(only in part for part in c.key)]
    return cells


def _select_adversaries(only: Optional[str]):
    entries = list(ADVERSARIES)
    if only:
        entries = [
            e
            for e in entries
            if any(only in part for part in (e.name, e.problem, e.victim))
        ]
    return entries


def run_lower_bounds(
    grid: str, only: Optional[str] = None, progress=None
) -> List[Dict[str, object]]:
    """Sweep every (matching) registered adversary; one record each."""
    from repro.adversary.base import sweep_records

    return sweep_records(_select_adversaries(only), grid, progress=progress)


def _replay_backend(outcomes):
    """A backend serving recorded :class:`TrialOutcome`\\ s, not executing.

    A trial's outcome is a pure function of ``(base_seed, trial)`` (see
    DESIGN.md §8.2), so driving the adaptive policy's batching/stopping
    logic over the fixed run's recorded outcomes yields the *identical*
    adaptive record at zero extra solve-and-check cost — the real
    dispatch path is pinned separately by the conformance suite under
    ``tests/montecarlo``.
    """
    from repro.exec.backends import ExecutionBackend

    class _ReplayBackend(ExecutionBackend):
        name = "replay"

        def __init__(self, recorded) -> None:
            self._by_trial = {o.trial: o for o in recorded}

        def run(self, *args, **kwargs):  # pragma: no cover - not used
            raise NotImplementedError("replay backend only serves trials")

        def run_trial_batch(
            self, problem, factory, algorithm, trial_indices, **kwargs
        ):
            return [self._by_trial[t] for t in trial_indices]

    return _ReplayBackend(outcomes)


def run_mc_cell(
    cell: MatrixCell,
    grid: str,
    backend,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Fixed-count vs adaptive Monte-Carlo estimation of one cell.

    Both estimates stream trials over the cell's *smallest* grid-point
    instance under the same base seed.  For *randomized* cells the
    adaptive run executes live, so ``prefix_consistent`` genuinely
    gates the engine's only-truncates determinism contract on the real
    dispatch path.  A deterministic algorithm never reads a tape, so
    its 32 fixed trials are identical by construction; re-executing a
    prefix of them would verify nothing — those cells derive the
    adaptive record by replaying the fixed run's recorded outcomes
    (``adaptive_mode: "replayed"``) and save the redundant work.
    """
    from repro.montecarlo.engine import run_trials

    fixed_policy, adaptive_policy = _mc_policies()
    param = cell.family.params(grid)[0]
    instance = cell.family.instance(param)
    problem = cell.problem.make()
    base_seed = cell.algorithm.seed if seed is None else seed
    fixed = run_trials(
        problem,
        instance,
        cell.algorithm.make(),
        fixed_policy,
        base_seed=base_seed,
        backend=backend,
    )
    live = cell.algorithm.randomized
    adaptive = run_trials(
        problem,
        instance,
        cell.algorithm.make(),
        adaptive_policy,
        base_seed=base_seed,
        backend=backend if live else _replay_backend(fixed.outcomes),
    )
    verdict_fixed = fixed.rate >= MC_VERDICT_THRESHOLD
    verdict_adaptive = adaptive.rate >= MC_VERDICT_THRESHOLD
    prefix_consistent = (
        adaptive.verdicts == fixed.verdicts[: adaptive.trials]
    )
    return {
        "problem": cell.problem.name,
        "algorithm": cell.algorithm.name,
        "family": cell.family.name,
        "param": repr(param),
        "n": instance.graph.num_nodes,
        "seed": base_seed,
        "randomized": cell.algorithm.randomized,
        "threshold": MC_VERDICT_THRESHOLD,
        "adaptive_mode": "live" if live else "replayed",
        "policy": adaptive_policy.describe(),
        "fixed": fixed.to_payload(),
        "adaptive": adaptive.to_payload(),
        "verdict_fixed": verdict_fixed,
        "verdict_adaptive": verdict_adaptive,
        "verdicts_agree": verdict_adaptive == verdict_fixed,
        "prefix_consistent": prefix_consistent,
        "trials_saved": fixed.trials - adaptive.trials,
        "ok": (
            verdict_adaptive == verdict_fixed
            and prefix_consistent
            and adaptive.trials <= fixed.trials
        ),
        "wall_time": fixed.elapsed + adaptive.elapsed,
    }


def run_monte_carlo(
    cells: List[MatrixCell],
    grid: str,
    backend,
    seed: Optional[int] = None,
    progress=None,
) -> List[Dict[str, object]]:
    """The artifact's ``monte_carlo`` section: one record per cell."""
    records = []
    for cell in cells:
        record = run_mc_cell(cell, grid, backend, seed=seed)
        records.append(record)
        if progress is not None:
            progress(
                f"  mc {record['algorithm']} @ {record['family']}: "
                f"{record['fixed']['trials']} -> "
                f"{record['adaptive']['trials']} trials, "
                f"rate={record['adaptive']['rate']:.3f} "
                f"({'ok' if record['ok'] else 'FAIL'})"
            )
    return records


# The implicit_scaling section's giant parameters: every entry takes
# its family past n = 10^7 nodes, the regime no materialized factory
# can reach (the artifact's other sections top out around 10^4).
IMPLICIT_GIANT: Dict[str, object] = {
    "leaf-coloring-hard": 23,  # n = 2^24 - 1 = 16,777,215
    "balanced-tree": 23,  # n = 2^24 - 1 = 16,777,215
    "cycle-uniform": 10_000_000,
    "hierarchical-thc-det(2)": 3162,  # n = m(m+1) = 10,001,406
}

# How many stride-sampled node ids the giant-n probe inspects.
IMPLICIT_PROBE_NODES = 512

# Families with a registered algorithm whose volume stays sublinear at
# giant n, swept root-only to fit the scaling curve: family ->
# (algorithm, params, seed, start node).  LeafColoringRandomWalkSolver
# walks root-to-leaf, so its volume curve is the paper's Θ(log n).
IMPLICIT_CURVE = {
    "leaf-coloring-hard": ("leaf-coloring/rw-to-leaf", (17, 20, 23), 7),
}


def _implicit_differential(entry) -> Dict[str, object]:
    """Implicit generator vs materialized factory, node for node."""
    from repro.model.implicit import ImplicitOracle, InstanceSpec
    from repro.model.oracle import StaticOracle

    param = entry.quick[-1]
    implicit = ImplicitOracle(InstanceSpec(entry.name, param))
    reference = StaticOracle(entry.factory(param))
    ok = implicit.n == reference.n
    for node in range(1, reference.n + 1):
        if not ok:
            break
        want = reference.node_info(node)
        ports = max(want.ports, default=0)
        ok = want == implicit.node_info(node) and all(
            implicit.resolve(node, port) == reference.resolve(node, port)
            for port in range(0, ports + 2)
        )
    return {"param": repr(param), "n": reference.n, "ok": ok}


def _implicit_probe(entry, param) -> Dict[str, object]:
    """Self-consistency of stride-sampled nodes at a giant parameter.

    Every sampled node's degree must match its connected-port list,
    ports 0 and max+1 must resolve to nothing, and every edge must be
    answered by a back-edge from the neighbor — the invariants the
    materialized builders guarantee by construction, checked here in
    the regime only the implicit generator can reach.
    """
    from repro.model.implicit import ImplicitOracle, InstanceSpec

    started = time.perf_counter()
    oracle = ImplicitOracle(InstanceSpec(entry.name, param))
    n = oracle.n
    stride = max(1, n // IMPLICIT_PROBE_NODES)
    nodes = list(range(1, n + 1, stride))
    if nodes[-1] != n:
        nodes.append(n)

    def consistent(node: int) -> bool:
        info = oracle.node_info(node)
        ports = max(info.ports, default=0)
        if info.degree != len(info.ports):
            return False
        if oracle.resolve(node, 0) is not None:
            return False
        if oracle.resolve(node, ports + 1) is not None:
            return False
        for port in info.ports:
            neighbor = oracle.resolve(node, port)
            if neighbor is None or not 1 <= neighbor <= n:
                return False
            back = oracle.node_info(neighbor)
            if all(
                oracle.resolve(neighbor, q) != node for q in back.ports
            ):
                return False
        return True

    ok = all(consistent(node) for node in nodes)
    return {
        "n": n,
        "nodes_checked": len(nodes),
        "realized_nodes": oracle.realized_total,
        "ok": ok,
        "elapsed": time.perf_counter() - started,
    }


def _implicit_curve(entry) -> List[Dict[str, object]]:
    """Root-only volume curve across growing n (where registered)."""
    curve = IMPLICIT_CURVE.get(entry.name)
    if curve is None:
        return []
    from repro.model.implicit import InstanceSpec
    from repro.model.runner import run_algorithm
    from repro.registry import ALGORITHMS

    algo_name, params, seed = curve
    algo = ALGORITHMS.get(algo_name)
    points = []
    for param in params:
        spec = InstanceSpec(entry.name, param)
        root = spec.meta.get("root", 1)
        started = time.perf_counter()
        run = run_algorithm(spec, algo.make(), seed=seed, nodes=[root])
        points.append({
            "param": repr(param),
            "n": spec.n,
            "volume": run.max_volume,
            "elapsed": time.perf_counter() - started,
        })
    return points


def run_implicit_scaling(
    only: Optional[str] = None, progress=None
) -> List[Dict[str, object]]:
    """The artifact's ``implicit_scaling`` section: one record per
    implicit-capable family (``FamilyEntry.implicit``)."""
    from repro.registry import FAMILIES

    records: List[Dict[str, object]] = []
    for entry in FAMILIES:
        if not entry.implicit:
            continue
        if only and only not in entry.name:
            continue
        giant = IMPLICIT_GIANT.get(entry.name, entry.quick[-1])
        started = time.perf_counter()
        differential = _implicit_differential(entry)
        probe = _implicit_probe(entry, giant)
        curve = _implicit_curve(entry)
        record = {
            "family": entry.name,
            "param": repr(giant),
            "n": probe["n"],
            "differential": differential,
            "probe": probe,
            "curve": curve,
            "volume_fit": _fit(
                [p["n"] for p in curve], [p["volume"] for p in curve]
            ),
            "ok": differential["ok"] and probe["ok"],
            "wall_time": time.perf_counter() - started,
        }
        records.append(record)
        if progress is not None:
            progress(
                f"  implicit {record['family']}: n={record['n']:,}, "
                f"differential {'ok' if differential['ok'] else 'FAIL'} "
                f"@ n={differential['n']}, probed "
                f"{probe['nodes_checked']} nodes "
                f"({'ok' if record['ok'] else 'FAIL'})"
            )
    return records


def upgrade_artifact(payload: Dict[str, object]) -> Dict[str, object]:
    """Read an older bench artifact forward to the current schema.

    Supported upgrades: v3 → v4 (the ``monte_carlo`` section and its
    summary counters did not exist before PR 5) and v4 → v5 (likewise
    ``implicit_scaling``, PR 7) — an empty section with zero totals is
    the faithful translation in both cases.  The payload is upgraded
    in place and returned; current-version payloads pass through
    untouched, anything newer than this reader is refused.
    """
    if payload.get("schema") != SCHEMA_NAME:
        raise ValueError(
            f"not a {SCHEMA_NAME} artifact: schema={payload.get('schema')!r}"
        )
    version = payload.get("schema_version")
    if not isinstance(version, int) or version < 3:
        raise ValueError(
            f"cannot upgrade schema_version={version!r} (v3+ supported)"
        )
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"artifact schema_version={version} is newer than this "
            f"reader (v{SCHEMA_VERSION})"
        )
    if version < 4:
        payload["monte_carlo"] = []
        summary = payload.setdefault("summary", {})
        summary["monte_carlo"] = {
            "cells": 0,
            "failed": 0,
            "fixed_trials": 0,
            "adaptive_trials": 0,
            "trials_saved": 0,
        }
        payload["schema_version"] = 4
    if version < 5:
        payload["implicit_scaling"] = []
        summary = payload.setdefault("summary", {})
        summary["implicit_scaling"] = {
            "families": 0,
            "failed": 0,
            "max_n": 0,
        }
        payload["schema_version"] = 5
    if version < 6:
        # No service was measured when the artifact was written; the
        # null section is the faithful translation (PR 10).
        payload["serving"] = None
        summary = payload.setdefault("summary", {})
        summary["serving"] = None
        payload["schema_version"] = 6
    return payload


def load_artifact(path) -> Dict[str, object]:
    """Load a ``BENCH_repro.json`` and upgrade it to the current schema."""
    with open(path) as handle:
        return upgrade_artifact(json.load(handle))


def cmd_bench(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.cli import _fail, format_table
    from repro.exec.backends import get_backend

    load_components()
    grid = "full" if args.full else "quick"
    cells = _select_cells(args.only)
    adversaries = _select_adversaries(args.only)
    if not cells and not adversaries:
        return _fail(f"no matrix cells or adversaries match {args.only!r}")
    if args.list_cells:
        print(json.dumps([list(c.key) for c in cells], indent=2))
        return 0
    corpus = None
    corpus_counters = {"hits": 0, "misses": 0}
    progress = print if args.progress else None
    started = time.perf_counter()
    # The ExitStack owns the backend for the matrix phase, so every
    # exit path (including a bad --corpus surfacing below) releases
    # pool resources promptly (a leaked ProcessPoolExecutor races
    # interpreter teardown and spews atexit tracebacks).
    with ExitStack() as stack:
        backend = get_backend(args.backend)
        stack.callback(backend.close)
        if args.corpus:
            from repro.corpus import InstanceCorpus

            corpus = InstanceCorpus(args.corpus)
        records = [
            run_cell(
                cell, grid, backend, seed=args.seed, progress=progress,
                corpus=corpus, corpus_counters=corpus_counters,
            )
            for cell in cells
        ]
        monte_carlo = (
            []
            if args.no_mc
            else run_monte_carlo(
                cells, grid, backend, seed=args.seed, progress=progress
            )
        )
    lower_bounds = run_lower_bounds(grid, only=args.only, progress=progress)
    implicit_scaling = (
        []
        if args.no_implicit
        else run_implicit_scaling(only=args.only, progress=progress)
    )
    serving = None
    if not args.no_serve:
        from repro.cli.serve import serving_record

        serving = serving_record(progress=progress)
    elapsed = time.perf_counter() - started
    failed = [r for r in records if not r["ok"]]
    lb_failed = [r for r in lower_bounds if not r["ok"]]
    mc_failed = [r for r in monte_carlo if not r["ok"]]
    imp_failed = [r for r in implicit_scaling if not r["ok"]]
    serve_failed = serving is not None and not serving["ok"]
    executions = sum(r["executions"] for r in records)
    wall_time = sum(r["wall_time"] for r in records)
    artifact = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": grid,
        "backend": args.backend or "serial",
        "oracle": getattr(backend, "oracle_mode", "compiled"),
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "cells": records,
        "lower_bounds": lower_bounds,
        "monte_carlo": monte_carlo,
        "implicit_scaling": implicit_scaling,
        "serving": serving,
        "summary": {
            "cells": len(records),
            "points": sum(len(r["points"]) for r in records),
            "failed": len(failed),
            "executions": executions,
            "wall_time": wall_time,
            "execs_per_sec": executions / wall_time if wall_time > 0 else None,
            "elapsed": elapsed,
            "lower_bounds": len(lower_bounds),
            "lower_bounds_failed": len(lb_failed),
            "monte_carlo": {
                "cells": len(monte_carlo),
                "failed": len(mc_failed),
                "fixed_trials": sum(
                    r["fixed"]["trials"] for r in monte_carlo
                ),
                "adaptive_trials": sum(
                    r["adaptive"]["trials"] for r in monte_carlo
                ),
                "trials_saved": sum(r["trials_saved"] for r in monte_carlo),
            },
            "implicit_scaling": {
                "families": len(implicit_scaling),
                "failed": len(imp_failed),
                "max_n": max(
                    (r["n"] for r in implicit_scaling), default=0
                ),
            },
            "corpus": {
                "root": str(corpus.root) if corpus is not None else None,
                "hits": corpus_counters["hits"],
                "misses": corpus_counters["misses"],
            },
            "serving": None if serving is None else {
                "requests": sum(
                    p["requests"] for p in serving["phases"]
                ),
                "warm_rps": serving["phases"][-1]["rps"],
                "p50_ms": serving["phases"][-1]["latency_ms"]["p50"],
                "p99_ms": serving["phases"][-1]["latency_ms"]["p99"],
                "store_hit_rate": serving["phases"][-1]["store_hit_rate"],
                "ok": serving["ok"],
            },
        },
    }
    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=1)
        handle.write("\n")
    if records:
        print(format_table(
            ["cell", "n", "max vol", "vol fit", "dist fit", "ok", "s"],
            [[
                f"{r['algorithm']} @ {r['family']}",
                "{}..{}".format(r["points"][0]["n"], r["points"][-1]["n"]),
                r["max_volume"],
                r["volume_fit"] or "-",
                r["distance_fit"] or "-",
                "ok" if r["ok"] else "FAIL",
                f"{r['elapsed']:.2f}",
            ] for r in records],
        ))
        print()
    if monte_carlo:
        print(format_table(
            ["monte carlo", "n", "trials", "rate", "ci", "stop", "ok"],
            [[
                f"{r['algorithm']} @ {r['family']}",
                r["n"],
                f"{r['fixed']['trials']}->{r['adaptive']['trials']}",
                f"{r['adaptive']['rate']:.3f}",
                "[{:.2f}, {:.2f}]".format(
                    r["adaptive"]["ci_low"], r["adaptive"]["ci_high"]
                ),
                r["adaptive"]["stopped"],
                "ok" if r["ok"] else "FAIL",
            ] for r in monte_carlo],
        ))
        print()
    if implicit_scaling:
        print(format_table(
            ["implicit", "n", "diff", "probed", "vol fit", "ok", "s"],
            [[
                r["family"],
                f"{r['n']:,}",
                "ok" if r["differential"]["ok"] else "FAIL",
                r["probe"]["nodes_checked"],
                r["volume_fit"] or "-",
                "ok" if r["ok"] else "FAIL",
                f"{r['wall_time']:.2f}",
            ] for r in implicit_scaling],
        ))
        print()
    if lower_bounds:
        print(format_table(
            ["lower bound", "n", "queries fit", "expected", "ok", "s"],
            [[
                f"{r['adversary']} vs {r['algorithm']}",
                "{}..{}".format(r["points"][0]["n"], r["points"][-1]["n"]),
                r["queries_fit"] or "-",
                "/".join(r["expected_fit"]),
                "ok" if r["ok"] else "FAIL",
                f"{r['wall_time']:.2f}",
            ] for r in lower_bounds],
        ))
        print()
    if corpus is not None:
        print(
            f"corpus {corpus.root}: {corpus_counters['hits']} instance "
            f"loads served, {corpus_counters['misses']} generated fresh"
        )
    serve_summary = artifact["summary"]["serving"]
    if serve_summary is not None:
        p50 = serve_summary["p50_ms"]
        p99 = serve_summary["p99_ms"]
        print(
            f"serving: {serve_summary['warm_rps']:.1f} req/s warm, "
            f"p50 {'-' if p50 is None else f'{p50:.1f}'}ms "
            f"p99 {'-' if p99 is None else f'{p99:.1f}'}ms, "
            f"store hit rate {serve_summary['store_hit_rate']:.2f} "
            f"({'ok' if serve_summary['ok'] else 'FAIL'})"
        )
        print()
    mc_summary = artifact["summary"]["monte_carlo"]
    print(
        f"{len(records)} cells, {artifact['summary']['points']} points, "
        f"{len(failed)} failed, {len(lower_bounds)} lower bounds, "
        f"{len(lb_failed)} lb-failed, {len(monte_carlo)} mc cells "
        f"({mc_summary['fixed_trials']} -> "
        f"{mc_summary['adaptive_trials']} trials, "
        f"{len(mc_failed)} mc-failed), {len(implicit_scaling)} implicit "
        f"families ({len(imp_failed)} implicit-failed), {elapsed:.1f}s, "
        f"{executions} executions "
        f"(mode={grid}, backend={artifact['backend']}, "
        f"oracle={artifact['oracle']}) -> {args.out}"
    )
    for record in failed:
        first_bad = next(p for p in record["points"] if not p["valid"])
        print(
            f"FAILED: {record['algorithm']} @ {record['family']} "
            f"param={first_bad['param']}: {first_bad['violations'][:1]}"
        )
    for record in lb_failed:
        print(
            f"LB FAILED: {record['adversary']} "
            f"(fitted {record['queries_fit']!r}, expected "
            f"{'/'.join(record['expected_fit'])})"
        )
    for record in mc_failed:
        print(
            f"MC FAILED: {record['algorithm']} @ {record['family']} "
            f"(fixed rate {record['fixed']['rate']:.3f}, adaptive rate "
            f"{record['adaptive']['rate']:.3f}, prefix_consistent="
            f"{record['prefix_consistent']})"
        )
    for record in imp_failed:
        print(
            f"IMPLICIT FAILED: {record['family']} "
            f"(differential ok={record['differential']['ok']}, "
            f"probe ok={record['probe']['ok']})"
        )
    if serve_failed:
        for failure in serving["failures"]:
            print(f"SERVING FAILED: {failure}")
    return (
        1
        if failed or lb_failed or mc_failed or imp_failed or serve_failed
        else 0
    )


def add_bench_arguments(sub) -> None:
    p_bench = sub.add_parser(
        "bench",
        help="run the registry smoke matrix, write BENCH_repro.json",
    )
    mode = p_bench.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true",
        help="quick grids (default; what CI gates on)",
    )
    mode.add_argument(
        "--full", action="store_true",
        help="full paper-table grids (minutes, not seconds)",
    )
    p_bench.add_argument(
        "--backend",
        help="serial | reference | batch | process[:N] (default serial; "
        "'reference' disables the compiled instance fast path)",
    )
    p_bench.add_argument(
        "--only", help="filter cells by substring of problem/algorithm/family"
    )
    p_bench.add_argument(
        "--seed", type=int, default=None,
        help="override every cell's registered default seed",
    )
    p_bench.add_argument(
        "--no-mc", action="store_true",
        help="skip the Monte-Carlo section (the artifact keeps an "
        "empty list)",
    )
    p_bench.add_argument(
        "--no-implicit", action="store_true",
        help="skip the implicit_scaling section (the artifact keeps "
        "an empty list)",
    )
    p_bench.add_argument(
        "--no-serve", action="store_true",
        help="skip the serving section (the artifact keeps a null "
        "section instead of measuring a live server)",
    )
    p_bench.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="serve cell instances from this content-addressed corpus "
        "where present (summary.corpus records the hit/miss split)",
    )
    p_bench.add_argument("--out", default="BENCH_repro.json")
    p_bench.add_argument(
        "--list-cells", action="store_true",
        help="print the enumerated matrix as JSON and exit",
    )
    p_bench.add_argument("--progress", action="store_true")
    p_bench.set_defaults(func=cmd_bench)
