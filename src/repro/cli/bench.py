"""``repro bench`` — the registry-enumerated smoke matrix and artifact.

Runs every compatible problem x algorithm x family cell of the component
registry (nothing is hand-listed: the matrix comes from
:func:`repro.registry.iter_compatible`) through the sweep orchestrator,
validating each grid point with the same
:func:`~repro.model.runner.solve_and_check` call the API exposes, and
writes a schema-versioned machine-readable artifact::

    {
      "schema": "repro-bench",
      "schema_version": 2,
      "mode": "quick" | "full",
      "backend": "serial" | "process:N" | "batch" | "reference",
      "oracle": "compiled" | "reference",
      "git_sha": "...", "python": "3.x.y", "generated": "...Z",
      "cells": [
        {
          "problem": ..., "algorithm": ..., "family": ..., "seed": ...,
          "randomized": ..., "ok": ...,
          "points": [{"param", "n", "valid", "max_volume", "mean_volume",
                      "max_distance", "max_queries", "truncated_nodes",
                      "violations", "executions", "elapsed",
                      "execs_per_sec"}, ...],
          "max_volume": ..., "mean_volume": ..., "max_distance": ...,
          "volume_fit": ..., "distance_fit": ...,
          "executions": ..., "wall_time": ..., "execs_per_sec": ...,
          "elapsed": ...   (schema-v1 alias, always == wall_time)
        }, ...
      ],
      "lower_bounds": [
        {
          "adversary": ..., "problem": ..., "algorithm": ..., "bound": ...,
          "expected_fit": [...],
          "points": [{"budget", "n", "queries", "bits", "defeated",
                      "upheld", "elapsed"}, ...],
          "queries_fit": ..., "bits_fit": ..., "ok": ..., "wall_time": ...
        }, ...
      ],
      "summary": {"cells", "points", "failed", "executions",
                  "wall_time", "execs_per_sec", "elapsed",
                  "lower_bounds", "lower_bounds_failed"}
    }

Schema v2 (PR 3) added the timing trajectory: per-point and per-cell
wall-clock plus executions/sec (one "execution" = one per-node run of
the algorithm), and the oracle mode the numbers were measured under —
so later perf PRs have a committed baseline to be judged against.

Schema v3 (PR 4) added the ``lower_bounds`` section: every registered
interactive adversary is swept over its quick/full budget grid, the
measured query (and, for two-party games, bit) counts are fitted
against the growth classes of :mod:`repro.analysis.complexity_fit`,
and a record is "ok" only when every point upheld the lower-bound
dichotomy *and* the fitted class is one the registration expects
(Ω(n) for all three paper adversaries).

CI's ``bench-smoke`` job runs ``repro bench --quick`` on the serial and
``process:2`` backends, uploads the artifact, and fails on any invalid
cell (non-zero exit); the ``adversary-smoke`` job gates the
``lower_bounds`` section the same way.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import subprocess
import time
from typing import Dict, List, Optional

from repro.registry import (
    ADVERSARIES,
    MatrixCell,
    iter_compatible,
    load_components,
)

SCHEMA_NAME = "repro-bench"
SCHEMA_VERSION = 3


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _fit(ns: List[int], costs: List[float]) -> Optional[str]:
    from repro.analysis.complexity_fit import fit_growth

    if len(ns) < 2:
        return None
    return fit_growth(ns, costs).best


def run_cell(
    cell: MatrixCell,
    grid: str,
    backend,
    seed: Optional[int] = None,
    progress=None,
) -> Dict[str, object]:
    """Solve-and-check one matrix cell over its parameter grid."""
    from repro.exec.sweep import SweepSpec, run_sweep
    from repro.model.runner import solve_and_check

    problem = cell.problem.make()
    cell_seed = cell.algorithm.seed if seed is None else seed
    points: List[Dict[str, object]] = []

    def measure(instance, param) -> float:
        report = solve_and_check(
            problem,
            instance,
            cell.algorithm.make(),
            seed=cell_seed,
            backend=backend,
        )
        points.append({
            "param": repr(param),
            "n": instance.graph.num_nodes,
            "valid": report.valid,
            "max_volume": report.run.max_volume,
            "mean_volume": report.run.mean_volume,
            "max_distance": report.run.max_distance,
            "max_queries": report.run.max_queries,
            "truncated_nodes": len(report.run.truncated_nodes),
            "violations": [str(v) for v in report.violations[:3]],
            "executions": len(report.run.profiles),
        })
        return float(report.run.max_volume)

    spec = SweepSpec(
        label=f"{cell.algorithm.name} @ {cell.family.name}",
        claimed="-",
        family=cell.family.instance_family(grid),
        measure=measure,
    )
    result = run_sweep(spec, backend, progress=progress)
    for point, sweep_point in zip(points, result.points):
        point["elapsed"] = sweep_point.elapsed
        point["execs_per_sec"] = (
            point["executions"] / sweep_point.elapsed
            if sweep_point.elapsed > 0
            else None
        )
    ns = [p["n"] for p in points]
    executions = sum(p["executions"] for p in points)
    wall_time = sum(p["elapsed"] for p in points)
    return {
        "problem": cell.problem.name,
        "algorithm": cell.algorithm.name,
        "family": cell.family.name,
        "seed": cell_seed,
        "randomized": cell.algorithm.randomized,
        "ok": all(p["valid"] for p in points),
        "points": points,
        "max_volume": max(p["max_volume"] for p in points),
        "mean_volume": statistics.fmean(p["mean_volume"] for p in points),
        "max_distance": max(p["max_distance"] for p in points),
        "volume_fit": _fit(ns, [p["max_volume"] for p in points]),
        "distance_fit": _fit(ns, [p["max_distance"] for p in points]),
        "executions": executions,
        "wall_time": wall_time,
        "execs_per_sec": executions / wall_time if wall_time > 0 else None,
        "elapsed": wall_time,
    }


def _select_cells(only: Optional[str]) -> List[MatrixCell]:
    cells = list(iter_compatible())
    if only:
        cells = [c for c in cells if any(only in part for part in c.key)]
    return cells


def _select_adversaries(only: Optional[str]):
    entries = list(ADVERSARIES)
    if only:
        entries = [
            e
            for e in entries
            if any(only in part for part in (e.name, e.problem, e.victim))
        ]
    return entries


def run_lower_bounds(
    grid: str, only: Optional[str] = None, progress=None
) -> List[Dict[str, object]]:
    """Sweep every (matching) registered adversary; one record each."""
    from repro.adversary.base import sweep_records

    return sweep_records(_select_adversaries(only), grid, progress=progress)


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.cli import _fail, format_table
    from repro.exec.backends import get_backend

    load_components()
    grid = "full" if args.full else "quick"
    cells = _select_cells(args.only)
    adversaries = _select_adversaries(args.only)
    if not cells and not adversaries:
        return _fail(f"no matrix cells or adversaries match {args.only!r}")
    if args.list_cells:
        print(json.dumps([list(c.key) for c in cells], indent=2))
        return 0
    backend = get_backend(args.backend)
    progress = print if args.progress else None
    started = time.perf_counter()
    try:
        records = [
            run_cell(cell, grid, backend, seed=args.seed, progress=progress)
            for cell in cells
        ]
    finally:
        # Release pool resources promptly (a leaked ProcessPoolExecutor
        # races interpreter teardown and spews atexit tracebacks).
        backend.close()
    lower_bounds = run_lower_bounds(grid, only=args.only, progress=progress)
    elapsed = time.perf_counter() - started
    failed = [r for r in records if not r["ok"]]
    lb_failed = [r for r in lower_bounds if not r["ok"]]
    executions = sum(r["executions"] for r in records)
    wall_time = sum(r["wall_time"] for r in records)
    artifact = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": grid,
        "backend": args.backend or "serial",
        "oracle": getattr(backend, "oracle_mode", "compiled"),
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "cells": records,
        "lower_bounds": lower_bounds,
        "summary": {
            "cells": len(records),
            "points": sum(len(r["points"]) for r in records),
            "failed": len(failed),
            "executions": executions,
            "wall_time": wall_time,
            "execs_per_sec": executions / wall_time if wall_time > 0 else None,
            "elapsed": elapsed,
            "lower_bounds": len(lower_bounds),
            "lower_bounds_failed": len(lb_failed),
        },
    }
    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=1)
        handle.write("\n")
    if records:
        print(format_table(
            ["cell", "n", "max vol", "vol fit", "dist fit", "ok", "s"],
            [[
                f"{r['algorithm']} @ {r['family']}",
                "{}..{}".format(r["points"][0]["n"], r["points"][-1]["n"]),
                r["max_volume"],
                r["volume_fit"] or "-",
                r["distance_fit"] or "-",
                "ok" if r["ok"] else "FAIL",
                f"{r['elapsed']:.2f}",
            ] for r in records],
        ))
        print()
    if lower_bounds:
        print(format_table(
            ["lower bound", "n", "queries fit", "expected", "ok", "s"],
            [[
                f"{r['adversary']} vs {r['algorithm']}",
                "{}..{}".format(r["points"][0]["n"], r["points"][-1]["n"]),
                r["queries_fit"] or "-",
                "/".join(r["expected_fit"]),
                "ok" if r["ok"] else "FAIL",
                f"{r['wall_time']:.2f}",
            ] for r in lower_bounds],
        ))
        print()
    print(
        f"{len(records)} cells, {artifact['summary']['points']} points, "
        f"{len(failed)} failed, {len(lower_bounds)} lower bounds, "
        f"{len(lb_failed)} lb-failed, {elapsed:.1f}s, "
        f"{executions} executions "
        f"(mode={grid}, backend={artifact['backend']}, "
        f"oracle={artifact['oracle']}) -> {args.out}"
    )
    for record in failed:
        first_bad = next(p for p in record["points"] if not p["valid"])
        print(
            f"FAILED: {record['algorithm']} @ {record['family']} "
            f"param={first_bad['param']}: {first_bad['violations'][:1]}"
        )
    for record in lb_failed:
        print(
            f"LB FAILED: {record['adversary']} "
            f"(fitted {record['queries_fit']!r}, expected "
            f"{'/'.join(record['expected_fit'])})"
        )
    return 1 if failed or lb_failed else 0


def add_bench_arguments(sub) -> None:
    p_bench = sub.add_parser(
        "bench",
        help="run the registry smoke matrix, write BENCH_repro.json",
    )
    mode = p_bench.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true",
        help="quick grids (default; what CI gates on)",
    )
    mode.add_argument(
        "--full", action="store_true",
        help="full paper-table grids (minutes, not seconds)",
    )
    p_bench.add_argument(
        "--backend",
        help="serial | reference | batch | process[:N] (default serial; "
        "'reference' disables the compiled instance fast path)",
    )
    p_bench.add_argument(
        "--only", help="filter cells by substring of problem/algorithm/family"
    )
    p_bench.add_argument(
        "--seed", type=int, default=None,
        help="override every cell's registered default seed",
    )
    p_bench.add_argument("--out", default="BENCH_repro.json")
    p_bench.add_argument(
        "--list-cells", action="store_true",
        help="print the enumerated matrix as JSON and exit",
    )
    p_bench.add_argument("--progress", action="store_true")
    p_bench.set_defaults(func=cmd_bench)
