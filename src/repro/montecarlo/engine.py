"""The streaming Monte-Carlo trial engine (adaptive success estimation).

``success_probability`` runs a *fixed* trial count per point; this engine
streams trials in batches through any execution backend's
:meth:`~repro.exec.backends.ExecutionBackend.run_trial_batch`, maintains
online statistics (success rate with a Wilson or Clopper–Pearson
confidence interval, deterministic quantile sketches of the per-trial
VOL/DIST/query maxima), and stops early once the interval is inside the
policy's tolerance — or exhausts the trial budget.

Determinism and resume
----------------------
Trial ``i`` always runs under seed ``base_seed + i``; node ``v``'s tape in
that trial is seeded from ``repro-tape:{base_seed + i}:{v}`` (see
:class:`~repro.model.randomness.TapeStore`).  Every per-trial outcome is
therefore a pure function of ``(base_seed, trial, node)`` — independent of
the backend, the batch boundaries, and of whether the run was interrupted:
:func:`run_trials` with ``resume=`` replays the recorded outcomes into
fresh online statistics (all of which are deterministic, including the
quantile sketch) and continues at the next trial index, producing a result
bitwise identical to an uninterrupted run.

With ``early_stop=False`` the engine executes exactly ``max_trials``
trials — the same solve-and-check calls, seeds, and tape draws as the
legacy fixed-count ``success_probability`` path; the differential
conformance suite under ``tests/montecarlo`` pins that equivalence on
every registry cell and every backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Union

from repro.exec.backends import (
    BatchBackend,
    ExecutionBackend,
    FixedInstanceFactory,
    SerialBackend,
    TrialOutcome,
    get_backend,
)
from repro.montecarlo.stats import METHODS, QuantileSketch, SuccessStats

#: Stopping reasons recorded in results and bench artifacts.
STOP_CONVERGED = "converged"  # CI half-width <= tolerance
STOP_BUDGET = "budget"  # max_trials reached with early stopping on
STOP_FIXED = "fixed"  # early stopping off: ran exactly max_trials


@dataclass(frozen=True)
class TrialPolicy:
    """How many trials to run and when to stop.

    ``early_stop=True`` stops at the first batch boundary where at least
    ``min_trials`` have run and the ``confidence``-level interval around
    the success rate has half-width ≤ ``tolerance``; otherwise exactly
    ``max_trials`` trials run (the legacy fixed-count semantics).
    Stopping is only ever evaluated at batch boundaries, so the executed
    trial set is always a prefix ``0..t-1`` of the deterministic stream.
    """

    min_trials: int = 16
    max_trials: int = 256
    batch_size: int = 16
    confidence: float = 0.95
    tolerance: float = 0.05
    early_stop: bool = True
    method: str = "wilson"

    def __post_init__(self) -> None:
        if self.min_trials < 1:
            raise ValueError("min_trials must be >= 1")
        if self.max_trials < self.min_trials:
            raise ValueError("max_trials must be >= min_trials")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if not 0.0 < self.tolerance < 1.0:
            raise ValueError("tolerance must be in (0, 1)")
        if self.method not in METHODS:
            raise ValueError(
                f"unknown interval method {self.method!r} "
                f"(expected one of {METHODS})"
            )

    @classmethod
    def fixed(cls, trials: int, method: str = "wilson") -> "TrialPolicy":
        """The legacy semantics: exactly ``trials`` trials, no stopping."""
        return cls(
            min_trials=1,
            max_trials=trials,
            batch_size=trials,
            early_stop=False,
            method=method,
        )

    def with_early_stop(self, enabled: bool) -> "TrialPolicy":
        return replace(self, early_stop=enabled)

    def describe(self) -> Dict[str, object]:
        """A stable JSON-able descriptor (cache keys, bench artifacts)."""
        return {
            "min_trials": self.min_trials,
            "max_trials": self.max_trials,
            "batch_size": self.batch_size,
            "confidence": self.confidence,
            "tolerance": self.tolerance,
            "early_stop": self.early_stop,
            "method": self.method,
        }


#: The shared quick preset: what `repro mc --quick` runs and what the
#: bench artifact's monte_carlo section uses as its adaptive policy —
#: one definition, so the CLI smoke and the artifact gate cannot drift.
QUICK_POLICY = TrialPolicy(
    min_trials=8, max_trials=32, batch_size=8, tolerance=0.1
)


# FixedInstanceFactory now lives in repro.exec.backends (so the process
# pool can recognize fixed-instance batches and publish the instance to
# shared memory); re-exported here unchanged for existing importers.


@dataclass
class MonteCarloResult:
    """Everything one streaming estimation run produced.

    ``outcomes`` is the full per-trial record (the quick/full grids this
    repo sweeps are small enough to keep it; the online statistics never
    read it back).  ``stopped`` is one of :data:`STOP_CONVERGED`,
    :data:`STOP_BUDGET`, :data:`STOP_FIXED`.
    """

    policy: TrialPolicy
    base_seed: int
    outcomes: List[TrialOutcome] = field(default_factory=list)
    stopped: str = STOP_FIXED
    elapsed: float = 0.0
    stats: SuccessStats = None  # type: ignore[assignment]
    volume_sketch: QuantileSketch = None  # type: ignore[assignment]
    distance_sketch: QuantileSketch = None  # type: ignore[assignment]
    queries_sketch: QuantileSketch = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.stats is None:
            self.stats = SuccessStats(self.policy.method)
        if self.volume_sketch is None:
            self.volume_sketch = QuantileSketch()
        if self.distance_sketch is None:
            self.distance_sketch = QuantileSketch()
        if self.queries_sketch is None:
            self.queries_sketch = QuantileSketch()

    # ------------------------------------------------------------------
    @property
    def trials(self) -> int:
        return self.stats.trials

    @property
    def successes(self) -> int:
        return self.stats.successes

    @property
    def rate(self) -> float:
        return self.stats.rate

    def interval(self) -> "tuple[float, float]":
        return self.stats.interval(self.policy.confidence)

    def half_width(self) -> float:
        return self.stats.half_width(self.policy.confidence)

    @property
    def verdicts(self) -> List[bool]:
        """The per-trial validity verdicts, in trial order."""
        return [o.valid for o in self.outcomes]

    def record(self, outcome: TrialOutcome) -> None:
        """Fold one trial into every online statistic."""
        self.outcomes.append(outcome)
        self.stats.record(outcome.valid)
        self.volume_sketch.add(outcome.max_volume)
        self.distance_sketch.add(outcome.max_distance)
        self.queries_sketch.add(outcome.max_queries)

    def to_payload(self) -> Dict[str, object]:
        """The JSON-able artifact record for this estimation run."""
        low, high = self.interval()
        return {
            "trials": self.trials,
            "successes": self.successes,
            "rate": self.rate,
            "ci_low": low,
            "ci_high": high,
            "confidence": self.policy.confidence,
            "method": self.policy.method,
            "stopped": self.stopped,
            "volume": self.volume_sketch.summary(),
            "distance": self.distance_sketch.summary(),
            "queries": self.queries_sketch.summary(),
            "elapsed": self.elapsed,
        }


def _should_stop(policy: TrialPolicy, result: MonteCarloResult) -> bool:
    return (
        policy.early_stop
        and result.trials >= policy.min_trials
        and result.half_width() <= policy.tolerance
    )


def run_trials(
    problem,
    instance_or_factory,
    algorithm,
    policy: TrialPolicy,
    *,
    base_seed: int = 0,
    backend: Union[ExecutionBackend, str, None] = None,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
    resume: Optional[MonteCarloResult] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> MonteCarloResult:
    """Stream solve-and-check trials until the policy says stop.

    ``instance_or_factory`` is either a fixed instance (wrapped in a
    :class:`FixedInstanceFactory`; the oracle compiles once per batch) or
    an ``instance_factory(trial) -> instance`` for per-trial draws from a
    hard distribution.  ``resume`` continues a previously returned result
    from its next trial index — the combined run is bitwise identical to
    an uninterrupted one (see the module docstring).
    """
    engine = get_backend(backend)
    owned: List[ExecutionBackend] = []
    if backend is not None and not isinstance(backend, ExecutionBackend):
        # A string spec ("process:4", ...) constructed a fresh backend
        # nobody else holds: close it when the run ends, or a lazily
        # started ProcessPoolExecutor (and any published shared-memory
        # segment) leaks into interpreter teardown.
        owned.append(engine)
    # The try covers everything from here on: even pre-loop failures
    # (resume validation, a factory that raises) must close an owned
    # pool and its shared-memory segments, not just loop exceptions.
    try:
        # A plain SerialBackend wraps *each* trial batch in a transient
        # BatchBackend, recompiling a fixed instance's oracle once per
        # batch; holding one oracle-caching backend for the whole
        # streaming loop compiles it once per run instead.  Results are
        # identical (the conformance suite pins serial == batch), so
        # this is purely an amortization.  Exact-type check on purpose:
        # a BatchBackend (a SerialBackend subclass) already caches
        # across calls.
        if type(engine) is SerialBackend:
            engine = BatchBackend(compiled=engine.compiled)
            owned.append(engine)
        factory = (
            instance_or_factory
            if callable(instance_or_factory)
            else FixedInstanceFactory(instance_or_factory)
        )
        if resume is not None:
            if resume.policy != policy or resume.base_seed != base_seed:
                raise ValueError(
                    "resume requires the same policy and base_seed the "
                    "original run used (trial seeds would diverge otherwise)"
                )
            result = MonteCarloResult(policy=policy, base_seed=base_seed)
            for outcome in resume.outcomes:
                result.record(outcome)
            result.elapsed = resume.elapsed
        else:
            result = MonteCarloResult(policy=policy, base_seed=base_seed)
        started = time.perf_counter()
        result.stopped = STOP_FIXED if not policy.early_stop else STOP_BUDGET
        while result.trials < policy.max_trials:
            if _should_stop(policy, result):
                result.stopped = STOP_CONVERGED
                break
            first = result.trials
            batch = range(
                first, min(first + policy.batch_size, policy.max_trials)
            )
            outcomes = engine.run_trial_batch(
                problem,
                factory,
                algorithm,
                batch,
                base_seed=base_seed,
                max_volume=max_volume,
                max_queries=max_queries,
            )
            for outcome in outcomes:
                result.record(outcome)
            if progress is not None:
                low, high = result.interval()
                progress(
                    f"  trials={result.trials} rate={result.rate:.3f} "
                    f"ci=[{low:.3f}, {high:.3f}]"
                )
        else:
            if _should_stop(policy, result):
                # Converged exactly at the budget boundary: still a
                # genuine convergence, not a budget exhaustion.
                result.stopped = STOP_CONVERGED
    finally:
        for held in owned:
            held.close()
    result.elapsed += time.perf_counter() - started
    return result


def estimate_success_probability(
    problem,
    instance_or_factory,
    algorithm,
    policy: Optional[TrialPolicy] = None,
    **kwargs,
) -> MonteCarloResult:
    """:func:`run_trials` with the default policy — the common entry."""
    return run_trials(
        problem,
        instance_or_factory,
        algorithm,
        policy or TrialPolicy(),
        **kwargs,
    )


__all__ = [
    "FixedInstanceFactory",
    "MonteCarloResult",
    "QUICK_POLICY",
    "STOP_BUDGET",
    "STOP_CONVERGED",
    "STOP_FIXED",
    "TrialPolicy",
    "estimate_success_probability",
    "run_trials",
]
