"""The streaming Monte-Carlo trial engine (adaptive success estimation).

``success_probability`` runs a *fixed* trial count per point; this engine
streams trials in batches through any execution backend's
:meth:`~repro.exec.backends.ExecutionBackend.run_trial_batch`, maintains
online statistics (success rate with a Wilson or Clopper–Pearson
confidence interval, deterministic quantile sketches of the per-trial
VOL/DIST/query maxima), and stops early once the interval is inside the
policy's tolerance — or exhausts the trial budget.

Determinism and resume
----------------------
Trial ``i`` always runs under seed ``base_seed + i``; node ``v``'s tape in
that trial is seeded from ``repro-tape:{base_seed + i}:{v}`` (see
:class:`~repro.model.randomness.TapeStore`).  Every per-trial outcome is
therefore a pure function of ``(base_seed, trial, node)`` — independent of
the backend, the batch boundaries, and of whether the run was interrupted:
:func:`run_trials` with ``resume=`` replays the recorded outcomes into
fresh online statistics (all of which are deterministic, including the
quantile sketch) and continues at the next trial index, producing a result
bitwise identical to an uninterrupted run.

``journal=`` is the crash-safe sibling of ``resume=``: completed trials
are appended to an on-disk JSONL journal (:mod:`repro.faults.journal`)
at every batch boundary, and re-running the exact same spec with the
same journal path replays the intact prefix and continues without
re-executing finished work — surviving ``kill -9`` where ``resume=``
needs the previous in-memory result.  The journal is keyed by a hash of
the run spec (problem, instance source, algorithm, policy, seeds,
budgets), so resuming a different run against the same file fails loudly
instead of mixing streams.

With ``early_stop=False`` the engine executes exactly ``max_trials``
trials — the same solve-and-check calls, seeds, and tape draws as the
legacy fixed-count ``success_probability`` path; the differential
conformance suite under ``tests/montecarlo`` pins that equivalence on
every registry cell and every backend.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.exec.backends import (
    BatchBackend,
    ExecutionBackend,
    FixedInstanceFactory,
    SerialBackend,
    TrialOutcome,
    get_backend,
)
from repro.faults.journal import Journal
from repro.montecarlo.stats import METHODS, QuantileSketch, SuccessStats

#: Stopping reasons recorded in results and bench artifacts.
STOP_CONVERGED = "converged"  # CI half-width <= tolerance
STOP_BUDGET = "budget"  # max_trials reached with early stopping on
STOP_FIXED = "fixed"  # early stopping off: ran exactly max_trials


@dataclass(frozen=True)
class TrialPolicy:
    """How many trials to run and when to stop.

    ``early_stop=True`` stops at the first batch boundary where at least
    ``min_trials`` have run and the ``confidence``-level interval around
    the success rate has half-width ≤ ``tolerance``; otherwise exactly
    ``max_trials`` trials run (the legacy fixed-count semantics).
    Stopping is only ever evaluated at batch boundaries, so the executed
    trial set is always a prefix ``0..t-1`` of the deterministic stream.
    """

    min_trials: int = 16
    max_trials: int = 256
    batch_size: int = 16
    confidence: float = 0.95
    tolerance: float = 0.05
    early_stop: bool = True
    method: str = "wilson"

    def __post_init__(self) -> None:
        if self.min_trials < 1:
            raise ValueError("min_trials must be >= 1")
        if self.max_trials < self.min_trials:
            raise ValueError("max_trials must be >= min_trials")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if not 0.0 < self.tolerance < 1.0:
            raise ValueError("tolerance must be in (0, 1)")
        if self.method not in METHODS:
            raise ValueError(
                f"unknown interval method {self.method!r} "
                f"(expected one of {METHODS})"
            )

    @classmethod
    def fixed(cls, trials: int, method: str = "wilson") -> "TrialPolicy":
        """The legacy semantics: exactly ``trials`` trials, no stopping."""
        return cls(
            min_trials=1,
            max_trials=trials,
            batch_size=trials,
            early_stop=False,
            method=method,
        )

    def with_early_stop(self, enabled: bool) -> "TrialPolicy":
        return replace(self, early_stop=enabled)

    def describe(self) -> Dict[str, object]:
        """A stable JSON-able descriptor (cache keys, bench artifacts)."""
        return {
            "min_trials": self.min_trials,
            "max_trials": self.max_trials,
            "batch_size": self.batch_size,
            "confidence": self.confidence,
            "tolerance": self.tolerance,
            "early_stop": self.early_stop,
            "method": self.method,
        }


#: The shared quick preset: what `repro mc --quick` runs and what the
#: bench artifact's monte_carlo section uses as its adaptive policy —
#: one definition, so the CLI smoke and the artifact gate cannot drift.
QUICK_POLICY = TrialPolicy(
    min_trials=8, max_trials=32, batch_size=8, tolerance=0.1
)


# FixedInstanceFactory now lives in repro.exec.backends (so the process
# pool can recognize fixed-instance batches and publish the instance to
# shared memory); re-exported here unchanged for existing importers.


@dataclass
class MonteCarloResult:
    """Everything one streaming estimation run produced.

    ``outcomes`` is the full per-trial record (the quick/full grids this
    repo sweeps are small enough to keep it; the online statistics never
    read it back).  ``stopped`` is one of :data:`STOP_CONVERGED`,
    :data:`STOP_BUDGET`, :data:`STOP_FIXED`.
    """

    policy: TrialPolicy
    base_seed: int
    outcomes: List[TrialOutcome] = field(default_factory=list)
    stopped: str = STOP_FIXED
    elapsed: float = 0.0
    stats: SuccessStats = None  # type: ignore[assignment]
    volume_sketch: QuantileSketch = None  # type: ignore[assignment]
    distance_sketch: QuantileSketch = None  # type: ignore[assignment]
    queries_sketch: QuantileSketch = None  # type: ignore[assignment]
    # Set when a supervised backend recovered from faults during this
    # run (a repro.faults.retry.FaultLog snapshot).  Excluded from
    # equality: a recovered run IS the fault-free run, bit for bit.
    fault_log: Optional[object] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.stats is None:
            self.stats = SuccessStats(self.policy.method)
        if self.volume_sketch is None:
            self.volume_sketch = QuantileSketch()
        if self.distance_sketch is None:
            self.distance_sketch = QuantileSketch()
        if self.queries_sketch is None:
            self.queries_sketch = QuantileSketch()

    # ------------------------------------------------------------------
    @property
    def trials(self) -> int:
        return self.stats.trials

    @property
    def successes(self) -> int:
        return self.stats.successes

    @property
    def rate(self) -> float:
        return self.stats.rate

    def interval(self) -> "tuple[float, float]":
        return self.stats.interval(self.policy.confidence)

    def half_width(self) -> float:
        return self.stats.half_width(self.policy.confidence)

    @property
    def verdicts(self) -> List[bool]:
        """The per-trial validity verdicts, in trial order."""
        return [o.valid for o in self.outcomes]

    def record(self, outcome: TrialOutcome) -> None:
        """Fold one trial into every online statistic."""
        self.outcomes.append(outcome)
        self.stats.record(outcome.valid)
        self.volume_sketch.add(outcome.max_volume)
        self.distance_sketch.add(outcome.max_distance)
        self.queries_sketch.add(outcome.max_queries)

    def to_payload(self) -> Dict[str, object]:
        """The JSON-able artifact record for this estimation run."""
        low, high = self.interval()
        return {
            "trials": self.trials,
            "successes": self.successes,
            "rate": self.rate,
            "ci_low": low,
            "ci_high": high,
            "confidence": self.policy.confidence,
            "method": self.policy.method,
            "stopped": self.stopped,
            "volume": self.volume_sketch.summary(),
            "distance": self.distance_sketch.summary(),
            "queries": self.queries_sketch.summary(),
            "elapsed": self.elapsed,
        }


def _should_stop(policy: TrialPolicy, result: MonteCarloResult) -> bool:
    return (
        policy.early_stop
        and result.trials >= policy.min_trials
        and result.half_width() <= policy.tolerance
    )


def _source_key(instance_or_factory) -> str:
    """A stable name for the instance source (part of the journal key)."""
    from repro.model.implicit import InstanceSpec

    if isinstance(instance_or_factory, FixedInstanceFactory):
        return _source_key(instance_or_factory.instance)
    if isinstance(instance_or_factory, InstanceSpec):
        return (
            f"spec:{instance_or_factory.family}:"
            f"{instance_or_factory.param!r}"
        )
    name = getattr(instance_or_factory, "name", None)
    n = getattr(instance_or_factory, "n", None)
    if name is not None and n is not None:
        return f"instance:{name}:{n}"
    qual = getattr(
        instance_or_factory,
        "__qualname__",
        type(instance_or_factory).__qualname__,
    )
    return f"factory:{qual}"


def trial_journal_key(
    problem,
    instance_or_factory,
    algorithm,
    policy: TrialPolicy,
    base_seed: int,
    max_volume: Optional[int],
    max_queries: Optional[int],
) -> "tuple[str, Dict[str, object]]":
    """``(spec hash, header meta)`` binding a journal to one run spec.

    Everything that changes any trial's seed or verdict is in the hash;
    the meta rides in the journal header for human inspection only.
    """
    meta = {
        "problem": type(problem).__name__,
        "source": _source_key(instance_or_factory),
        "algorithm": getattr(algorithm, "name", type(algorithm).__name__),
        "policy": policy.describe(),
        "base_seed": base_seed,
        "max_volume": max_volume,
        "max_queries": max_queries,
    }
    blob = json.dumps(meta, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16], meta


def _outcome_record(outcome: TrialOutcome) -> Dict[str, object]:
    return {
        "kind": "trial",
        "trial": outcome.trial,
        "seed": outcome.seed,
        "valid": outcome.valid,
        "max_volume": outcome.max_volume,
        "max_distance": outcome.max_distance,
        "max_queries": outcome.max_queries,
        "random_bits": outcome.random_bits,
    }


def _records_prefix(
    records: List[Dict[str, object]], policy: TrialPolicy
) -> List[TrialOutcome]:
    """The intact contiguous prefix of recorded trials, batch-aligned.

    Duplicated trial indices keep their first record (a crash between
    append and fsync can re-journal a re-executed trial; records from a
    journal and a result store can also overlap — all copies are
    identical anyway, every outcome being a pure function of its
    seeds).  The prefix stops at the first gap and is then truncated to
    a multiple of ``policy.batch_size`` so the resumed run re-evaluates
    its stop conditions at exactly the batch boundaries the
    uninterrupted run would have used — the dropped tail re-executes
    bitwise-identically.
    """
    by_trial: Dict[int, TrialOutcome] = {}
    for record in records:
        if record.get("kind") != "trial":
            continue
        trial = int(record["trial"])
        if trial in by_trial:
            continue
        by_trial[trial] = TrialOutcome(
            trial=trial,
            seed=int(record["seed"]),
            valid=bool(record["valid"]),
            max_volume=int(record["max_volume"]),
            max_distance=int(record["max_distance"]),
            max_queries=int(record["max_queries"]),
            random_bits=int(record["random_bits"]),
        )
    prefix: List[TrialOutcome] = []
    while len(prefix) in by_trial:
        prefix.append(by_trial[len(prefix)])
    if len(prefix) >= policy.max_trials:
        # A completed run's final batch may be shorter than batch_size;
        # nothing is left to execute, so keep every recorded trial.
        return prefix[: policy.max_trials]
    keep = (len(prefix) // policy.batch_size) * policy.batch_size
    return prefix[:keep]


def _replay_journal(journal: Journal, policy: TrialPolicy) -> List[TrialOutcome]:
    """The journal's intact contiguous prefix, batch-aligned."""
    return _records_prefix(journal.records, policy)


def run_trials(
    problem,
    instance_or_factory,
    algorithm,
    policy: TrialPolicy,
    *,
    base_seed: int = 0,
    backend: Union[ExecutionBackend, str, None] = None,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
    resume: Optional[MonteCarloResult] = None,
    journal: Union[Journal, str, Path, None] = None,
    store=None,
    progress: Optional[Callable[[str], None]] = None,
) -> MonteCarloResult:
    """Stream solve-and-check trials until the policy says stop.

    ``instance_or_factory`` is either a fixed instance (wrapped in a
    :class:`FixedInstanceFactory`; the oracle compiles once per batch) or
    an ``instance_factory(trial) -> instance`` for per-trial draws from a
    hard distribution.  ``resume`` continues a previously returned result
    from its next trial index — the combined run is bitwise identical to
    an uninterrupted one (see the module docstring).

    ``journal`` (a path or an open :class:`~repro.faults.journal.Journal`)
    makes the run crash-safe: completed trials are appended durably at
    batch boundaries, the journal's intact prefix is replayed instead of
    re-executed on the next run of the same spec, and a key mismatch
    (different spec, same file) raises
    :class:`~repro.faults.journal.JournalKeyError`.  Mutually exclusive
    with ``resume`` (a journal *is* a durable resume point).

    ``store`` (a :class:`~repro.corpus.results.ResultStore`) is the
    accumulating sibling: completed batches append to the store under
    the same run key the journal uses, stored trials replay instead of
    re-executing, and — unlike a journal file — one store serves every
    run spec ever recorded.  Journal and store compose (their records
    are interchangeable); ``resume=`` is mutually exclusive with both.
    """
    if resume is not None and (journal is not None or store is not None):
        raise ValueError(
            "pass either resume= (in-memory) or journal=/store= "
            "(on-disk), not both — the journal and the store already "
            "replay completed trials"
        )
    engine = get_backend(backend)
    owned: List[ExecutionBackend] = []
    if backend is not None and not isinstance(backend, ExecutionBackend):
        # A string spec ("process:4", ...) constructed a fresh backend
        # nobody else holds: close it when the run ends, or a lazily
        # started ProcessPoolExecutor (and any published shared-memory
        # segment) leaks into interpreter teardown.
        owned.append(engine)
    jour: Optional[Journal] = None
    owned_journal = False
    # The try covers everything from here on: even pre-loop failures
    # (resume validation, a factory that raises) must close an owned
    # pool and its shared-memory segments, not just loop exceptions.
    try:
        # A plain SerialBackend wraps *each* trial batch in a transient
        # BatchBackend, recompiling a fixed instance's oracle once per
        # batch; holding one oracle-caching backend for the whole
        # streaming loop compiles it once per run instead.  Results are
        # identical (the conformance suite pins serial == batch), so
        # this is purely an amortization.  Exact-type check on purpose:
        # a BatchBackend (a SerialBackend subclass) already caches
        # across calls.
        if type(engine) is SerialBackend:
            engine = BatchBackend(compiled=engine.compiled)
            owned.append(engine)
        factory = (
            instance_or_factory
            if callable(instance_or_factory)
            else FixedInstanceFactory(instance_or_factory)
        )
        if resume is not None:
            if resume.policy != policy or resume.base_seed != base_seed:
                raise ValueError(
                    "resume requires the same policy and base_seed the "
                    "original run used (trial seeds would diverge otherwise)"
                )
            result = MonteCarloResult(policy=policy, base_seed=base_seed)
            for outcome in resume.outcomes:
                result.record(outcome)
            result.elapsed = resume.elapsed
        else:
            result = MonteCarloResult(policy=policy, base_seed=base_seed)
        run_key: Optional[str] = None
        if journal is not None or store is not None:
            run_key, run_meta = trial_journal_key(
                problem,
                instance_or_factory,
                algorithm,
                policy,
                base_seed,
                max_volume,
                max_queries,
            )
        if journal is not None:
            if isinstance(journal, Journal):
                jour = journal
            else:
                jour = Journal(journal, run_key, meta=run_meta)
                owned_journal = True
        if jour is not None or store is not None:
            # Journal lines and store rows use one record format and
            # describe the same deterministic trial stream, so the
            # replayed prefix merges both sources (first copy wins;
            # all copies are identical).
            records: List[Dict[str, object]] = []
            if jour is not None:
                records.extend(jour.records)
            if store is not None:
                store.record_trial_run(run_key, run_meta)
                records.extend(store.trial_records(run_key))
            replayed = _records_prefix(records, policy)
            for outcome in replayed:
                result.record(outcome)
            if replayed and progress is not None:
                sources = []
                if jour is not None:
                    sources.append(f"journal {jour.path}")
                if store is not None:
                    sources.append(f"store {store.path}")
                progress(
                    f"  replayed {len(replayed)} completed "
                    f"trial{'s' if len(replayed) != 1 else ''} from "
                    f"{' + '.join(sources)}"
                )
        started = time.perf_counter()
        backend_log = getattr(engine, "fault_log", None)
        log_mark = len(backend_log) if backend_log is not None else 0
        result.stopped = STOP_FIXED if not policy.early_stop else STOP_BUDGET
        while result.trials < policy.max_trials:
            if _should_stop(policy, result):
                result.stopped = STOP_CONVERGED
                break
            first = result.trials
            batch = range(
                first, min(first + policy.batch_size, policy.max_trials)
            )
            outcomes = engine.run_trial_batch(
                problem,
                factory,
                algorithm,
                batch,
                base_seed=base_seed,
                max_volume=max_volume,
                max_queries=max_queries,
            )
            for outcome in outcomes:
                result.record(outcome)
            if jour is not None or store is not None:
                batch_records = [
                    _outcome_record(outcome) for outcome in outcomes
                ]
                if jour is not None:
                    # One durable append (single fsync) per completed
                    # batch: a crash can lose at most the batch in
                    # flight.
                    jour.append_many(batch_records)
                if store is not None:
                    store.record_trials(run_key, batch_records)
            if progress is not None:
                low, high = result.interval()
                progress(
                    f"  trials={result.trials} rate={result.rate:.3f} "
                    f"ci=[{low:.3f}, {high:.3f}]"
                )
        else:
            if _should_stop(policy, result):
                # Converged exactly at the budget boundary: still a
                # genuine convergence, not a budget exhaustion.
                result.stopped = STOP_CONVERGED
        if backend_log is not None and len(backend_log) > log_mark:
            result.fault_log = backend_log.since(log_mark)
    finally:
        for held in owned:
            held.close()
        if owned_journal and jour is not None:
            jour.close()
    result.elapsed += time.perf_counter() - started
    return result


def estimate_success_probability(
    problem,
    instance_or_factory,
    algorithm,
    policy: Optional[TrialPolicy] = None,
    **kwargs,
) -> MonteCarloResult:
    """:func:`run_trials` with the default policy — the common entry."""
    return run_trials(
        problem,
        instance_or_factory,
        algorithm,
        policy or TrialPolicy(),
        **kwargs,
    )


__all__ = [
    "FixedInstanceFactory",
    "MonteCarloResult",
    "QUICK_POLICY",
    "STOP_BUDGET",
    "STOP_CONVERGED",
    "STOP_FIXED",
    "TrialPolicy",
    "estimate_success_probability",
    "run_trials",
    "trial_journal_key",
]
