"""Streaming Monte-Carlo estimation of success probabilities.

The paper's separations are probabilistic — success probabilities and
VOL/DIST distributions over the nodes' random tapes — and the legacy
:func:`~repro.model.runner.success_probability` samples them with a fixed
trial count.  This package replaces that with a *streaming* engine:

* :mod:`repro.montecarlo.stats` — Wilson / Clopper–Pearson confidence
  intervals and deterministic bounded-memory quantile sketches;
* :mod:`repro.montecarlo.engine` — :class:`TrialPolicy` (budgets,
  tolerance, early stopping), :func:`run_trials` (batched dispatch over
  any execution backend), and :class:`MonteCarloResult` (online
  statistics plus the full per-trial outcome record).

``early_stop=False`` reproduces the legacy fixed-count path bit for bit;
``early_stop=True`` stops as soon as the interval is inside tolerance.
See DESIGN.md §8 for the determinism/resume argument.
"""

from repro.exec.backends import TrialOutcome
from repro.montecarlo.engine import (
    QUICK_POLICY,
    STOP_BUDGET,
    STOP_CONVERGED,
    STOP_FIXED,
    FixedInstanceFactory,
    MonteCarloResult,
    TrialPolicy,
    estimate_success_probability,
    run_trials,
)
from repro.montecarlo.stats import (
    METHODS,
    QuantileSketch,
    SuccessStats,
    binomial_interval,
    clopper_pearson_interval,
    wilson_interval,
)

__all__ = [
    "FixedInstanceFactory",
    "METHODS",
    "MonteCarloResult",
    "QUICK_POLICY",
    "QuantileSketch",
    "STOP_BUDGET",
    "STOP_CONVERGED",
    "STOP_FIXED",
    "SuccessStats",
    "TrialOutcome",
    "TrialPolicy",
    "binomial_interval",
    "clopper_pearson_interval",
    "estimate_success_probability",
    "run_trials",
    "wilson_interval",
]
