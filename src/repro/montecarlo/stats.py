"""Online statistics for the streaming Monte-Carlo trial engine.

Three pieces, all stdlib-only and fully deterministic:

* binomial confidence intervals — :func:`wilson_interval` (the score
  interval; cheap, good coverage away from the boundary) and
  :func:`clopper_pearson_interval` (the exact interval, inverted from
  the regularized incomplete beta function, so coverage is guaranteed
  ≥ the nominal level even at p ∈ {0, 1});
* :class:`SuccessStats` — a streaming Bernoulli accumulator exposing
  the success rate plus either interval;
* :class:`QuantileSketch` — a bounded-memory quantile summary with
  *deterministic* compaction (sort, keep every other element, double
  the stride), so two runs that feed it the same value stream report
  identical quantiles — a requirement for bitwise-reproducible bench
  artifacts, which rules out the usual randomized sketches.

The interval math is what the early-stopping rule of
:mod:`repro.montecarlo.engine` gates on: stop once the half-width of the
confidence interval is within tolerance.
"""

from __future__ import annotations

import math
from statistics import NormalDist
from typing import List, Sequence, Tuple

METHODS = ("wilson", "clopper-pearson")


def _z_value(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """The Wilson score interval for a binomial proportion.

    With p̂ = s/n and z the two-sided normal quantile::

        (p̂ + z²/2n ± z·sqrt(p̂(1−p̂)/n + z²/4n²)) / (1 + z²/n)

    Unlike the Wald interval it never leaves [0, 1] and behaves sanely
    at s ∈ {0, n}, which is exactly where w.h.p. algorithms live.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    z = _z_value(confidence)
    n = float(trials)
    p_hat = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p_hat + z2 / (2.0 * n)) / denom
    spread = (
        z * math.sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)) / denom
    )
    # At the boundaries the closed form gives center ∓ spread = 0 or 1
    # exactly; snap away the float residue so s = 0 reports low = 0.0
    # (and symmetrically) instead of ±1e-17.
    low = 0.0 if successes == 0 else max(0.0, center - spread)
    high = 1.0 if successes == trials else min(1.0, center + spread)
    return (low, high)


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """The exact (Clopper–Pearson) interval for a binomial proportion.

    Lower = BetaInv(α/2; s, n−s+1), upper = BetaInv(1−α/2; s+1, n−s),
    with the boundary conventions lower(0, n) = 0 and upper(n, n) = 1.
    The beta quantiles are obtained by bisecting the regularized
    incomplete beta function (continued fraction, Lentz's algorithm) —
    no SciPy, same ≥ 1e-12 agreement with it on the tested grid.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    alpha = 1.0 - confidence
    if successes == 0:
        low = 0.0
    else:
        low = _beta_inv(alpha / 2.0, successes, trials - successes + 1)
    if successes == trials:
        high = 1.0
    else:
        high = _beta_inv(1.0 - alpha / 2.0, successes + 1, trials - successes)
    return (low, high)


def _beta_cont_fraction(x: float, a: float, b: float) -> float:
    """The continued fraction for I_x(a, b) (Lentz's method, NR 6.4)."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h


def regularized_incomplete_beta(x: float, a: float, b: float) -> float:
    """I_x(a, b): the CDF of the Beta(a, b) distribution at ``x``."""
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must be in [0, 1]")
    if a <= 0 or b <= 0:
        raise ValueError("a and b must be positive")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast for x < (a+1)/(a+b+2);
    # otherwise use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cont_fraction(x, a, b) / a
    return 1.0 - front * _beta_cont_fraction(1.0 - x, b, a) / b


def _beta_inv(p: float, a: float, b: float) -> float:
    """BetaInv(p; a, b) by bisection on the monotone CDF."""
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if regularized_incomplete_beta(mid, a, b) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-14:
            break
    return 0.5 * (lo + hi)


def binomial_interval(
    successes: int,
    trials: int,
    confidence: float = 0.95,
    method: str = "wilson",
) -> Tuple[float, float]:
    """Dispatch on the interval method name (``METHODS``)."""
    if method == "wilson":
        return wilson_interval(successes, trials, confidence)
    if method == "clopper-pearson":
        return clopper_pearson_interval(successes, trials, confidence)
    raise ValueError(
        f"unknown interval method {method!r} (expected one of {METHODS})"
    )


class SuccessStats:
    """Streaming Bernoulli statistics: rate plus a confidence interval."""

    def __init__(self, method: str = "wilson") -> None:
        if method not in METHODS:
            raise ValueError(
                f"unknown interval method {method!r} "
                f"(expected one of {METHODS})"
            )
        self.method = method
        self.trials = 0
        self.successes = 0

    def record(self, success: bool) -> None:
        self.trials += 1
        if success:
            self.successes += 1

    @property
    def rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        if self.trials == 0:
            return (0.0, 1.0)  # vacuous: no data constrains p at all
        return binomial_interval(
            self.successes, self.trials, confidence, self.method
        )

    def half_width(self, confidence: float = 0.95) -> float:
        low, high = self.interval(confidence)
        return (high - low) / 2.0


class QuantileSketch:
    """A bounded-memory quantile summary via deterministic stride sampling.

    Until ``capacity`` is exceeded every value is retained (the summary
    is exact).  On overflow the buffer drops every other element *in
    arrival order* and the sampling stride doubles: from then on only
    every ``stride``-th incoming value is admitted.  Every retained
    value therefore always represents the same number of stream
    positions — a systematic sample of the stream — so a quantile query
    is a plain index into the sorted buffer with no weighting.  (A
    naive sort-and-halve compaction would mix old double-weight
    survivors with new single-weight arrivals and skew the ranks.)
    Unlike a reservoir sample the sketch is a pure function of the
    input sequence, so resumed Monte-Carlo runs rebuild it identically.
    """

    def __init__(self, capacity: int = 512) -> None:
        # Even only: compaction drops every other element of a buffer
        # holding capacity + 1 values, and keeping the *last* admitted
        # element (an even index only when capacity is even) is what
        # keeps the admission phase aligned with the doubled stride.
        if capacity < 8 or capacity % 2:
            raise ValueError("capacity must be even and >= 8")
        self.capacity = capacity
        self._values: List[float] = []
        self._stride = 1
        self._phase = 0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """How many values were fed in (not how many are retained)."""
        return self._count

    @property
    def compacted(self) -> bool:
        return self._stride > 1

    def add(self, value: float) -> None:
        value = float(value)
        self._count += 1
        # The exact extremes are tracked separately: the stride sampler
        # can skip the true minimum or maximum.
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        # Admit every stride-th stream position, starting with the one
        # right after the position the last retained value came from.
        self._phase += 1
        if self._phase < self._stride:
            return
        self._phase = 0
        self._values.append(value)
        if len(self._values) > self.capacity:
            # Drop every other retained value in arrival order: what is
            # left is exactly the positions divisible by the new stride.
            self._values = self._values[::2]
            self._stride *= 2

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def quantile(self, q: float) -> float:
        """The (approximate) q-quantile of everything added so far."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._values:
            raise ValueError("quantile of an empty sketch")
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        ordered = sorted(self._values)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict:
        """The artifact-ready digest: min/median/p90/max plus count."""
        return {
            "count": self.count,
            "min": self.quantile(0.0),
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "max": self.quantile(1.0),
        }


__all__ = [
    "METHODS",
    "QuantileSketch",
    "SuccessStats",
    "binomial_interval",
    "clopper_pearson_interval",
    "regularized_incomplete_beta",
    "wilson_interval",
]
