"""BalancedTree (Section 4, Definitions 4.1–4.3).

The second construction: an LCL with R-DIST = D-DIST = Θ(log n) but
R-VOL = D-VOL = Θ(n) (Theorem 4.5) — the volume lower bound holding *even
for randomized algorithms*, proved by embedding set disjointness
(Proposition 4.9, reproduced in :mod:`repro.adversary.disjointness`).

**Input:** a balanced tree labeling — a colored tree labeling plus lateral
left/right-neighbor ports LN/RN.
**Output:** a pair ``(β, p)`` with β ∈ {B, U} (balanced / unbalanced) and a
port ``p`` (or None for ⊥).
**Validity (Definition 4.3):** incompatible nodes output (U, ⊥); compatible
leaves output (B, P(v)); compatible internal nodes aggregate their
children: all-B propagates B upward, any U propagates U with a port
pointing at a U child.  Globally (Lemma 4.7): B everywhere iff the
labeling is globally compatible, and any incompatible descendant forces U
on the whole ancestor path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.labelings import BALANCED, Instance, UNBALANCED
from repro.graphs.tree_structure import (
    InstanceTopology,
    Topology,
    is_consistent,
    is_internal,
    is_leaf,
    left_child_node,
    right_child_node,
)
from repro.lcl.base import LCLProblem, Violation
from repro.registry import register_problem

Output = Tuple[str, Optional[int]]


def _lateral(t: Topology, v: int, which: str) -> Optional[int]:
    label = t.label(v)
    port = label.left_neighbor if which == "left" else label.right_neighbor
    return t.node_at(v, port)


def left_neighbor_node(t: Topology, v: int) -> Optional[int]:
    """The node reached via ``LN(v)``, or None for ⊥."""
    return _lateral(t, v, "left")


def right_neighbor_node(t: Topology, v: int) -> Optional[int]:
    """The node reached via ``RN(v)``, or None for ⊥."""
    return _lateral(t, v, "right")


def is_compatible(t: Topology, v: int) -> bool:
    """Definition 4.2 compatibility of a *consistent* node ``v``.

    The five conditions: type-preserving, agreement, siblings, persistence
    and leaves.  One reading note: the paper states persistence as
    "RN(RC(v)) = LN(LC(w))" for w = RN(v); the condition its proofs rely on
    (Lemma 4.6's lateral-connectivity claim, and the Figure 5 instance) is
    that v's right child and w's left child are lateral neighbors, i.e.
    ``RN(RC(v)) = LC(w)`` — we implement that, together with its mirror.
    """
    internal = is_internal(t, v)
    leaf = is_leaf(t, v)
    if not (internal or leaf):
        raise ValueError(f"compatibility asked for inconsistent node {v}")
    ln = left_neighbor_node(t, v)
    rn = right_neighbor_node(t, v)

    # type-preserving
    for nbr in (ln, rn):
        if nbr is None:
            continue
        if internal and not is_internal(t, nbr):
            return False
        if leaf and not is_leaf(t, nbr):
            return False

    # agreement
    if ln is not None and right_neighbor_node(t, ln) != v:
        return False
    if rn is not None and left_neighbor_node(t, rn) != v:
        return False

    if internal:
        lc = left_child_node(t, v)
        rc = right_child_node(t, v)
        # siblings: RN(LC(v)) = RC(v) and LN(RC(v)) = LC(v)
        if right_neighbor_node(t, lc) != rc:
            return False
        if left_neighbor_node(t, rc) != lc:
            return False
        # persistence (see docstring): across a lateral edge, the adjacent
        # children are lateral neighbors as well.
        if rn is not None:
            if not is_internal(t, rn):
                return False
            if right_neighbor_node(t, rc) != left_child_node(t, rn):
                return False
        if ln is not None:
            if not is_internal(t, ln):
                return False
            if left_neighbor_node(t, lc) != right_child_node(t, ln):
                return False

    if leaf:
        # leaves: lateral neighbors of leaves are leaves (re-checked for
        # symmetry with the paper's list; subsumed by type-preserving).
        if ln is not None and not is_leaf(t, ln):
            return False
        if rn is not None and not is_leaf(t, rn):
            return False
    return True


def _is_output_pair(value: object) -> bool:
    return (
        isinstance(value, tuple)
        and len(value) == 2
        and value[0] in (BALANCED, UNBALANCED)
        and (value[1] is None or isinstance(value[1], int))
    )


@register_problem("balanced-tree")
class BalancedTree(LCLProblem):
    """The BalancedTree LCL (Definition 4.3); checking radius 3."""

    name = "balanced-tree"
    checking_radius = 3
    output_labels = (_is_output_pair,)

    def check_node(
        self,
        topology: Topology,
        node: int,
        outputs: Dict[int, object],
    ) -> List[Violation]:
        violations: List[Violation] = []
        out = outputs.get(node)
        if not _is_output_pair(out):
            violations.append(
                Violation(node, "alphabet", f"output {out!r} is not (β, p)")
            )
            return violations
        if not is_consistent(topology, node):
            return violations  # Definition 4.3 constrains consistent nodes only
        beta, port = out
        compatible = is_compatible(topology, node)
        label = topology.label(node)

        # Condition 1: incompatible -> (U, ⊥)
        if not compatible:
            if out != (UNBALANCED, None):
                violations.append(
                    Violation(
                        node,
                        "cond1",
                        f"incompatible node must output (U, ⊥), got {out!r}",
                    )
                )
            return violations

        # Condition 2: compatible leaf -> (B, P(v))
        if is_leaf(topology, node):
            if out != (BALANCED, label.parent):
                violations.append(
                    Violation(
                        node,
                        "cond2",
                        f"compatible leaf must output (B, P(v))="
                        f"(B, {label.parent}), got {out!r}",
                    )
                )
            return violations

        # Condition 3: compatible internal nodes.
        lc = left_child_node(topology, node)
        rc = right_child_node(topology, node)
        lc_out = outputs.get(lc)
        rc_out = outputs.get(rc)
        lc_is_u = _is_output_pair(lc_out) and lc_out[0] == UNBALANCED
        rc_is_u = _is_output_pair(rc_out) and rc_out[0] == UNBALANCED

        if lc_is_u or rc_is_u:
            # 3(b): must output (U, p) pointing at a U child.
            ok_ports = set()
            if lc_is_u:
                ok_ports.add(label.left_child)
            if rc_is_u:
                ok_ports.add(label.right_child)
            if beta != UNBALANCED or port not in ok_ports:
                violations.append(
                    Violation(
                        node,
                        "cond3b",
                        f"child output U; node must point at a U child "
                        f"(ports {sorted(ok_ports)}), got {out!r}",
                    )
                )
            return violations

        lc_is_b = (
            _is_output_pair(lc_out)
            and lc_out == (BALANCED, topology.label(lc).parent)
        )
        rc_is_b = (
            _is_output_pair(rc_out)
            and rc_out == (BALANCED, topology.label(rc).parent)
        )
        if lc_is_b and rc_is_b:
            # 3(a): both children balanced -> (B, P(v)).
            if out != (BALANCED, label.parent):
                violations.append(
                    Violation(
                        node,
                        "cond3a",
                        f"children balanced; node must output "
                        f"(B, {label.parent}), got {out!r}",
                    )
                )
        return violations


def compatibility_map(instance: Instance) -> Dict[int, Optional[bool]]:
    """Per-node compatibility (None for inconsistent nodes)."""
    t = InstanceTopology(instance)
    result: Dict[int, Optional[bool]] = {}
    for v in instance.graph.nodes():
        result[v] = is_compatible(t, v) if is_consistent(t, v) else None
    return result


def reference_solution(instance: Instance) -> Dict[int, object]:
    """A canonical valid output computed with global information.

    Implements Lemma 4.7's characterization: incompatible ⇒ (U, ⊥); a node
    with an incompatible G_T descendant ⇒ (U, port toward such a child,
    preferring LC); otherwise (B, P(v)).  Inconsistent nodes output (B, ⊥)
    as in the Proposition 4.8 algorithm.
    """
    t = InstanceTopology(instance)
    compat = compatibility_map(instance)
    tainted: Dict[int, bool] = {}

    def has_bad_below(v: int, stack: frozenset) -> bool:
        """Is some node at-or-below ``v`` (in G_T) incompatible?"""
        if v in tainted:
            return tainted[v]
        if v in stack:  # cycle guard: treat re-entry as clean
            return False
        if compat.get(v) is None:
            # Inconsistent nodes terminate G_T downward exploration.
            tainted[v] = False
            return False
        if compat[v] is False:
            tainted[v] = True
            return True
        bad = False
        if is_internal(t, v):
            new_stack = stack | {v}
            for child in (left_child_node(t, v), right_child_node(t, v)):
                if child is not None and has_bad_below(child, new_stack):
                    bad = True
        tainted[v] = bad
        return bad

    outputs: Dict[int, object] = {}
    for v in instance.graph.nodes():
        if compat[v] is None:
            outputs[v] = (BALANCED, None)
        elif compat[v] is False:
            outputs[v] = (UNBALANCED, None)
        elif is_leaf(t, v):
            outputs[v] = (BALANCED, t.label(v).parent)
        else:
            label = t.label(v)
            lc = left_child_node(t, v)
            rc = right_child_node(t, v)
            if has_bad_below(lc, frozenset({v})):
                outputs[v] = (UNBALANCED, label.left_child)
            elif has_bad_below(rc, frozenset({v})):
                outputs[v] = (UNBALANCED, label.right_child)
            else:
                outputs[v] = (BALANCED, label.parent)
    return outputs
