"""Problem definitions: the paper's five constructions plus classic LCLs."""

from repro.problems.balanced_tree import BalancedTree
from repro.problems.hh_thc import HHTHC
from repro.problems.hierarchical_thc import HierarchicalTHC
from repro.problems.hybrid_thc import HybridTHC
from repro.problems.leaf_coloring import LeafColoring
from repro.problems.classic.cycle_coloring import (
    CycleColoring,
    MaximalIndependentSet,
    TwoColoring,
)
from repro.problems.classic.relay import RelayProblem
from repro.problems.classic.trivial import ConstantProblem, DegreeParity

__all__ = [
    "BalancedTree",
    "ConstantProblem",
    "CycleColoring",
    "DegreeParity",
    "HHTHC",
    "HierarchicalTHC",
    "HybridTHC",
    "LeafColoring",
    "MaximalIndependentSet",
    "RelayProblem",
    "TwoColoring",
]
