"""Hierarchical 2½-coloring, Hierarchical-THC(k) (Section 5, Definition 5.5).

A variant of Chang–Pettie hierarchical 2½ coloring with, for each fixed k
(Theorem 5.9):

* R-DIST = D-DIST = Θ(n^{1/k}),
* R-VOL = O(n^{1/k} · polylog n),
* D-VOL = Ω(n / log n),

giving the polynomial rungs of the randomized volume hierarchy.

**Input:** a colored tree labeling.  Node levels follow right-child chains
(Definition 5.1): level 1 ⇔ RC = ⊥, else 1 + level(RC(v)).  Levels above k
are *exempt* and must output X.  Each level-ℓ "backbone" (maximal
same-level LC-chain, Observation 5.4) is a path or cycle whose nodes hang
level-(ℓ−1) components from their RC ports.

**Output:** χout ∈ {R, B, D, X} (colors, *decline*, *exempt*).

**Validity (Definition 5.5):** condition 1 exempts high levels; condition 2
lets level leaves echo χin or decline or go exempt; condition 3 forces
level-1 backbones to color unanimously (leaf color or all-decline);
condition 4 governs middle levels, where a node may go exempt only if its
hung component committed to a color (4(b)), must otherwise copy its
backbone successor (4(a)) or restart a colored run above an exempt
successor (4(c)); condition 5 is the stricter top level, where declining
is forbidden.

The per-condition helpers are shared with Hybrid-THC (Definition 6.1),
which swaps out condition 4(b)'s exemption predicate at level 2.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graphs.labelings import (
    BLUE,
    DECLINE,
    EXEMPT,
    Instance,
    RED,
    THC_OUTPUTS,
)
from repro.graphs.tree_structure import (
    Topology,
    all_backbones,
    is_level_leaf,
    left_child_node,
    level_of,
    right_child_node,
)
from repro.lcl.base import LCLProblem, Violation
from repro.registry import register_problem

_COLOR_OR_EXEMPT = (RED, BLUE, EXEMPT)
_COLOR_OR_DECLINE = (RED, BLUE, DECLINE)


def check_cond2_level_leaf(
    t: Topology, v: int, out, violations: List[Violation]
) -> None:
    """Condition 2: a level-ℓ leaf outputs χin(v), D or X."""
    chi_in = t.label(v).color
    if out not in (chi_in, DECLINE, EXEMPT):
        violations.append(
            Violation(
                v,
                "cond2",
                f"level leaf must output χin={chi_in!r}, D or X; got {out!r}",
            )
        )


def check_cond3_level_one(
    t: Topology, v: int, out, outputs: Dict[int, object],
    violations: List[Violation],
) -> None:
    """Condition 3: level-1 nodes color in {R, B, D} and copy successors."""
    if out not in _COLOR_OR_DECLINE:
        violations.append(
            Violation(v, "cond3a", f"level-1 output must be R/B/D; got {out!r}")
        )
        return
    if not is_level_leaf(t, v):
        lc = left_child_node(t, v)
        if out != outputs.get(lc):
            violations.append(
                Violation(
                    v,
                    "cond3b",
                    f"level-1 non-leaf must copy LC output "
                    f"{outputs.get(lc)!r}; got {out!r}",
                )
            )


def check_cond4_middle(
    t: Topology,
    v: int,
    out,
    outputs: Dict[int, object],
    violations: List[Violation],
    exemption_ok: Callable[[object], bool],
) -> None:
    """Condition 4 (non-leaf middle levels): one of 4(a), 4(b), 4(c).

    ``exemption_ok(rc_output)`` is Definition 5.5's 4(b) predicate
    (χout(RC(v)) ∈ {R, B, X}); Hybrid-THC's Definition 6.1 substitutes
    "RC committed to a BalancedTree answer" at level 2.
    """
    lc = left_child_node(t, v)
    rc = right_child_node(t, v)
    lc_out = outputs.get(lc)
    chi_in = t.label(v).color
    ok_4a = out == lc_out and out in _COLOR_OR_DECLINE
    ok_4b = out == EXEMPT and exemption_ok(outputs.get(rc))
    ok_4c = out in (chi_in, DECLINE) and lc_out == EXEMPT
    if not (ok_4a or ok_4b or ok_4c):
        violations.append(
            Violation(
                v,
                "cond4",
                f"middle-level output {out!r} satisfies none of 4(a)/(b)/(c) "
                f"(LC out {lc_out!r}, RC out {outputs.get(rc)!r}, "
                f"χin {chi_in!r})",
            )
        )


def check_cond5_top(
    t: Topology,
    v: int,
    out,
    outputs: Dict[int, object],
    violations: List[Violation],
) -> None:
    """Condition 5: top level — no declining, exemption needs colored RC."""
    if out not in _COLOR_OR_EXEMPT:
        violations.append(
            Violation(v, "cond5", f"level-k output must be R/B/X; got {out!r}")
        )
        return
    if out == EXEMPT:
        rc = right_child_node(t, v)
        if outputs.get(rc) not in _COLOR_OR_EXEMPT:
            violations.append(
                Violation(
                    v,
                    "cond5a",
                    f"exempt level-k node needs RC output in R/B/X; "
                    f"RC output {outputs.get(rc)!r}",
                )
            )
        return
    if not is_level_leaf(t, v):
        lc = left_child_node(t, v)
        lc_out = outputs.get(lc)
        chi_in = t.label(v).color
        ok = (lc_out != EXEMPT and out == lc_out) or (
            lc_out == EXEMPT and out == chi_in
        )
        if not ok:
            violations.append(
                Violation(
                    v,
                    "cond5b",
                    f"level-k non-leaf output {out!r} inconsistent with LC "
                    f"output {lc_out!r} (χin {chi_in!r})",
                )
            )


@register_problem("hierarchical-thc(2)", defaults={"k": 2})
class HierarchicalTHC(LCLProblem):
    """Hierarchical-THC(k) (Definition 5.5); checking radius 2(k+2)."""

    output_labels = THC_OUTPUTS

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.name = f"hierarchical-thc({k})"
        self.checking_radius = 2 * (k + 2)

    def check_node(
        self,
        topology: Topology,
        node: int,
        outputs: Dict[int, object],
    ) -> List[Violation]:
        violations: List[Violation] = []
        out = outputs.get(node)
        if out not in THC_OUTPUTS:
            violations.append(
                Violation(node, "alphabet", f"output {out!r} not in R/B/D/X")
            )
            return violations
        lvl = level_of(topology, node, cap=self.k)

        if lvl > self.k:  # condition 1
            if out != EXEMPT:
                violations.append(
                    Violation(
                        node, "cond1", f"level>{self.k} must be X; got {out!r}"
                    )
                )
            return violations

        leaf = is_level_leaf(topology, node)
        if leaf:
            check_cond2_level_leaf(topology, node, out, violations)
        if lvl == 1:
            check_cond3_level_one(topology, node, out, outputs, violations)
        if 1 < lvl < self.k and not leaf:
            check_cond4_middle(
                topology,
                node,
                out,
                outputs,
                violations,
                exemption_ok=lambda rc_out: rc_out in _COLOR_OR_EXEMPT,
            )
        if lvl == self.k:
            check_cond5_top(topology, node, out, outputs, violations)
        return violations


def reference_solution(instance: Instance, k: int) -> Dict[int, object]:
    """A canonical valid output computed with global information.

    Level-1 backbones color unanimously with their leaf's input color (or
    the minimum-ID node's color on a cycle); every node at level ≥ 2 goes
    exempt, which condition 4(b)/5(a) permits because the hung component's
    root always ends up colored or exempt.  Levels above k are exempt by
    condition 1.
    """
    outputs: Dict[int, object] = {}
    for backbone in all_backbones(instance, cap=k):
        if backbone.level == 1:
            anchor = (
                backbone.leaf
                if not backbone.is_cycle
                else min(backbone.nodes)
            )
            color = instance.label(anchor).color
            for v in backbone.nodes:
                outputs[v] = color
        else:
            for v in backbone.nodes:
                outputs[v] = EXEMPT
    return outputs
