"""Class-B specimens: cycle 3-coloring and MIS (Θ(log* n) problems).

Figure 1 places (Δ+1)-coloring-style symmetry-breaking problems at
distance Θ(log* n); Section 1.2 notes the corresponding volume class
coincides (via Even–Medina–Ron style colorings).  We implement the cycle
(Δ = 2) members, solved by Cole–Vishkin in
:mod:`repro.algorithms.classic_algs`.

These problems are defined on cycle instances (every node degree 2, ports
1 = predecessor, 2 = successor); the checkers read neighbors through the
port structure, which the generic :class:`Topology` does not expose, so
they carry instance-level ``validate`` overrides and the per-node check
handles only the alphabet.
"""

from __future__ import annotations

from typing import List

from repro.graphs.labelings import Instance
from repro.lcl.base import LCLProblem, Violation
from repro.registry import register_problem


@register_problem("cycle-3-coloring")
class CycleColoring(LCLProblem):
    """Proper vertex coloring of a cycle with ``num_colors`` colors."""

    def __init__(self, num_colors: int = 3) -> None:
        if num_colors < 2:
            raise ValueError("need at least 2 colors")
        self.num_colors = num_colors
        self.name = f"cycle-{num_colors}-coloring"
        self.checking_radius = 1
        self.output_labels = tuple(range(num_colors))

    def check_node(self, topology, node, outputs) -> List[Violation]:
        out = outputs.get(node)
        if out not in self.output_labels:
            return [Violation(node, "alphabet", f"output {out!r} not a color")]
        return []

    def validate(self, instance: Instance, outputs) -> List[Violation]:
        violations = super().validate(instance, outputs)
        for node in instance.graph.nodes():
            for nbr in instance.graph.neighbors(node):
                if node < nbr and outputs.get(node) == outputs.get(nbr):
                    violations.append(
                        Violation(
                            node,
                            "proper",
                            f"neighbor {nbr} has same color "
                            f"{outputs.get(node)!r}",
                        )
                    )
        return violations


@register_problem("mis")
class MaximalIndependentSet(LCLProblem):
    """MIS: selected nodes (output 1) are independent and dominating."""

    name = "mis"
    checking_radius = 1
    output_labels = (0, 1)

    def check_node(self, topology, node, outputs) -> List[Violation]:
        if outputs.get(node) not in (0, 1):
            return [Violation(node, "alphabet", "output must be 0/1")]
        return []

    def validate(self, instance: Instance, outputs) -> List[Violation]:
        violations = super().validate(instance, outputs)
        for node in instance.graph.nodes():
            nbrs = instance.graph.neighbors(node)
            if outputs.get(node) == 1:
                for nbr in nbrs:
                    if node < nbr and outputs.get(nbr) == 1:
                        violations.append(
                            Violation(
                                node,
                                "independent",
                                f"adjacent selected node {nbr}",
                            )
                        )
            else:
                if all(outputs.get(nbr) == 0 for nbr in nbrs):
                    violations.append(
                        Violation(node, "maximal", "unselected, no selected neighbor")
                    )
        return violations


@register_problem("cycle-2-coloring")
class TwoColoring(LCLProblem):
    """Proper 2-coloring — a *global* (class D) problem on even cycles.

    Any algorithm must see Θ(n) far: the two proper 2-colorings of an even
    cycle differ everywhere, and fixing the color at one node determines
    the color of every other node through the whole cycle.
    """

    name = "cycle-2-coloring"
    checking_radius = 1
    output_labels = (0, 1)

    def check_node(self, topology, node, outputs) -> List[Violation]:
        if outputs.get(node) not in (0, 1):
            return [Violation(node, "alphabet", "output must be 0/1")]
        return []

    def validate(self, instance: Instance, outputs) -> List[Violation]:
        violations = super().validate(instance, outputs)
        for node in instance.graph.nodes():
            for nbr in instance.graph.neighbors(node):
                if node < nbr and outputs.get(node) == outputs.get(nbr):
                    violations.append(
                        Violation(
                            node, "proper", f"neighbor {nbr} has same color"
                        )
                    )
        return violations
