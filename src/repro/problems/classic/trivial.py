"""Class-A specimens for the Figure 1/2 landscape: Θ(1) problems.

Section 1.2: the LCLs with distance complexity Θ(1) are exactly those with
volume complexity Θ(1) — both classes collapse.  We include two concrete
members: a constant-output problem and local degree parity.
"""

from __future__ import annotations

from typing import List

from repro.lcl.base import LCLProblem, Violation
from repro.registry import register_problem


@register_problem("constant")
class ConstantProblem(LCLProblem):
    """Output the fixed label "ok" everywhere — the simplest LCL."""

    name = "constant"
    checking_radius = 0
    output_labels = ("ok",)

    def check_node(self, topology, node, outputs) -> List[Violation]:
        if outputs.get(node) != "ok":
            return [Violation(node, "const", "must output 'ok'")]
        return []


@register_problem("degree-parity")
class DegreeParity(LCLProblem):
    """Each node outputs deg(v) mod 2 — checkable and solvable at radius 1.

    The checker needs the degree, which a topology does not expose, so the
    problem carries its own validate(); the per-node rule still only reads
    the node itself (radius 0 in practice).
    """

    name = "degree-parity"
    checking_radius = 1
    output_labels = (0, 1)

    def check_node(self, topology, node, outputs) -> List[Violation]:
        # Degree is not topology-visible; the instance-level validate()
        # below is authoritative.  Alphabet-only check here.
        if outputs.get(node) not in (0, 1):
            return [Violation(node, "alphabet", "output must be 0/1")]
        return []

    def validate(self, instance, outputs) -> List[Violation]:
        violations = super().validate(instance, outputs)
        for node in instance.graph.nodes():
            expected = instance.graph.degree(node) % 2
            if outputs.get(node) not in (0, 1):
                continue
            if outputs.get(node) != expected:
                violations.append(
                    Violation(
                        node,
                        "parity",
                        f"expected {expected}, got {outputs.get(node)!r}",
                    )
                )
        return violations
