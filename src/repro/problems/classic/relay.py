"""The Example 7.6 relay problem (volume vs CONGEST separation).

Two complete binary trees of depth k joined by a single root–root bridge;
the i-th leaf of the right tree holds a bit ``b_i``, and the i-th leaf of
the left tree must output it.  Probes solve this with O(log n) volume (walk
up, across, and down); CONGEST needs Ω(n/B) rounds because all 2^k bits
must cross the one bridge edge.

This problem is **not** an LCL (the paper says so explicitly): validity
pairs leaves across Θ(n) distance, so the checker is global and reads the
instance's pairing metadata.  It lives here only for the Section 7.3
experiments; nothing in the LCL machinery depends on it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graphs.labelings import Instance
from repro.lcl.base import LCLProblem, Violation
from repro.registry import register_problem


@register_problem("relay", tags=("non-lcl",))
class RelayProblem(LCLProblem):
    """Left-tree leaves must output their partner right-tree leaf's bit."""

    name = "relay"
    checking_radius = 0  # not meaningful: this is not an LCL
    output_labels = (0, 1, None)

    def check_node(self, topology, node, outputs) -> List[Violation]:
        return []  # all constraints are global; see validate()

    def validate(self, instance: Instance, outputs) -> List[Violation]:
        violations: List[Violation] = []
        pairing: Dict[int, int] = instance.meta["pairing"]
        for u_leaf, v_leaf in pairing.items():
            expected = instance.label(v_leaf).bit
            got = outputs.get(u_leaf)
            if got != expected:
                violations.append(
                    Violation(
                        u_leaf,
                        "relay",
                        f"must output partner {v_leaf}'s bit {expected}, "
                        f"got {got!r}",
                    )
                )
        return violations
