"""Hybrid balanced 2½-coloring, Hybrid-THC(k) (Section 6, Definition 6.1).

A hybrid of BalancedTree and Hierarchical-THC(k) with (Theorem 6.3):

* R-DIST = D-DIST = Θ(log n)      — distance-easy, because every level-1
  BalancedTree component is solvable in O(log n) distance, so every node
  above level 1 may simply go exempt;
* R-VOL = Θ̃(n^{1/k}), D-VOL = Θ̃(n) — volume-hard, because solving a
  level-1 component takes volume proportional to its size (Prop 4.9).

**Input:** a colored *balanced* tree labeling plus an explicit
``level(v) ∈ [k+1]`` per node.

**Output:** either a BalancedTree pair (β, p) — for level-1 nodes — or a
symbol in {R, B, D, X}.

**Validity (Definition 6.1):**

* level 1 — the output is valid for BalancedTree within the level-1
  subgraph, or the node outputs D along with all its level-1 neighbors
  (declining is component-unanimous);
* level 2 — conditions 2 and 4 of Definition 5.5, with 4(b) replaced by
  "χout(v) = X and χout(RC(v)) ∈ {B, U}", i.e. exemption requires the
  BalancedTree instance below to be *solved*, not declined;
* level > 2 — Definition 5.5 verbatim.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graphs.labelings import (
    DECLINE,
    EXEMPT,
    Instance,
    THC_OUTPUTS,
)
from repro.graphs.tree_structure import (
    InstanceTopology,
    Topology,
    is_level_leaf,
    left_child_node,
    level_of,
    parent_node,
    right_child_node,
)
from repro.lcl.base import LCLProblem, Violation
from repro.problems.balanced_tree import BalancedTree, _is_output_pair
from repro.registry import register_problem
from repro.problems.balanced_tree import (
    reference_solution as balanced_reference,
)
from repro.problems.hierarchical_thc import (
    _COLOR_OR_EXEMPT,
    check_cond2_level_leaf,
    check_cond4_middle,
    check_cond5_top,
)


def _is_solved_bt_output(value: object) -> bool:
    """Definition 6.1's level-2 exemption predicate: χout(RC) ∈ {B, U}."""
    return _is_output_pair(value)


@register_problem("hybrid-thc(2)", defaults={"k": 2})
class HybridTHC(LCLProblem):
    """Hybrid-THC(k) (Definition 6.1); checking radius 2(k+2)."""

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ValueError("Hybrid-THC needs k >= 2")
        self.k = k
        self.name = f"hybrid-thc({k})"
        self.checking_radius = 2 * (k + 2)
        self._balanced = BalancedTree()

    def output_ok(self, value: object) -> bool:
        return value in THC_OUTPUTS or _is_output_pair(value)

    def check_node(
        self,
        topology: Topology,
        node: int,
        outputs: Dict[int, object],
    ) -> List[Violation]:
        violations: List[Violation] = []
        out = outputs.get(node)
        if not self.output_ok(out):
            violations.append(
                Violation(node, "alphabet", f"output {out!r} invalid")
            )
            return violations
        lvl = level_of(topology, node, cap=self.k)

        if lvl == 1:
            return self._check_level_one(topology, node, out, outputs)

        if lvl == 2:
            if out not in THC_OUTPUTS:
                violations.append(
                    Violation(
                        node, "alphabet", f"level-2 output {out!r} not R/B/D/X"
                    )
                )
                return violations
            if is_level_leaf(topology, node):
                check_cond2_level_leaf(topology, node, out, violations)
            else:
                check_cond4_middle(
                    topology,
                    node,
                    out,
                    outputs,
                    violations,
                    exemption_ok=_is_solved_bt_output,
                )
            return violations

        # Level > 2: Definition 5.5 verbatim.
        if out not in THC_OUTPUTS:
            violations.append(
                Violation(node, "alphabet", f"output {out!r} not R/B/D/X")
            )
            return violations
        if lvl > self.k:  # condition 1
            if out != EXEMPT:
                violations.append(
                    Violation(
                        node, "cond1", f"level>{self.k} must be X; got {out!r}"
                    )
                )
            return violations
        leaf = is_level_leaf(topology, node)
        if leaf:
            check_cond2_level_leaf(topology, node, out, violations)
        if 2 < lvl < self.k and not leaf:
            check_cond4_middle(
                topology,
                node,
                out,
                outputs,
                violations,
                exemption_ok=lambda rc_out: rc_out in _COLOR_OR_EXEMPT,
            )
        if lvl == self.k:
            check_cond5_top(topology, node, out, outputs, violations)
        return violations

    # ------------------------------------------------------------------
    def _check_level_one(
        self,
        topology: Topology,
        node: int,
        out,
        outputs: Dict[int, object],
    ) -> List[Violation]:
        violations: List[Violation] = []
        if out == DECLINE:
            # Declining must be unanimous among level-1 tree neighbors.
            neighbors = [
                parent_node(topology, node),
                left_child_node(topology, node),
                right_child_node(topology, node),
            ]
            for nbr in neighbors:
                if nbr is None:
                    continue
                if level_of(topology, nbr, cap=self.k) != 1:
                    continue
                if outputs.get(nbr) != DECLINE:
                    violations.append(
                        Violation(
                            node,
                            "decline-unanimity",
                            f"declined but level-1 neighbor {nbr} output "
                            f"{outputs.get(nbr)!r}",
                        )
                    )
            return violations
        if not _is_output_pair(out):
            violations.append(
                Violation(
                    node,
                    "alphabet",
                    f"level-1 output must be (β, p) or D; got {out!r}",
                )
            )
            return violations
        return self._balanced.check_node(topology, node, outputs)


def reference_solution(instance: Instance, k: int) -> Dict[int, object]:
    """A canonical valid output computed with global information.

    Level-1 nodes answer their BalancedTree instance (Lemma 4.7 reference);
    every node at level ≥ 2 goes exempt — the level-2 exemption is lawful
    because each level-1 root outputs a (β, p) pair.
    """
    topo = InstanceTopology(instance)
    balanced = balanced_reference(instance)
    outputs: Dict[int, object] = {}
    for node in instance.graph.nodes():
        lvl = level_of(topo, node, cap=k)
        outputs[node] = balanced[node] if lvl == 1 else EXEMPT
    return outputs
