"""LeafColoring (Section 3, Definitions 3.1–3.4).

The first separation construction: an LCL with

* R-DIST = D-DIST = Θ(log n),
* R-VOL = Θ(log n), but
* D-VOL = Θ(n)   (Theorem 3.6),

i.e. randomness helps volume *exponentially* even though the deterministic
volume is linear — impossible for distance (Section 1.3).

**Input:** a colored tree labeling (P/LC/RC ports plus χin ∈ {R, B}).
**Output:** a color χout ∈ {R, B} per node.
**Validity (Definition 3.4):** leaves and inconsistent nodes echo their
input color; every internal node copies one of its children's outputs.
Globally this forces each internal node's output to equal the input color
of some descendant leaf.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.graphs.labelings import COLORS, Instance
from repro.graphs.tree_structure import (
    InstanceTopology,
    Topology,
    classify,
    descendant_leaf_path,
    is_internal,
    left_child_node,
    right_child_node,
    INTERNAL,
)
from repro.lcl.base import LCLProblem, Violation
from repro.registry import register_problem


@register_problem("leaf-coloring")
class LeafColoring(LCLProblem):
    """The LeafColoring LCL (Definition 3.4); checking radius 2."""

    name = "leaf-coloring"
    checking_radius = 2
    output_labels = COLORS

    def check_node(
        self,
        topology: Topology,
        node: int,
        outputs: Dict[int, object],
    ) -> List[Violation]:
        violations: List[Violation] = []
        out = outputs.get(node)
        if out not in COLORS:
            violations.append(
                Violation(node, "alphabet", f"output {out!r} not a color")
            )
            return violations
        label = topology.label(node)
        if is_internal(topology, node):
            lc = left_child_node(topology, node)
            rc = right_child_node(topology, node)
            child_outputs = {outputs.get(lc), outputs.get(rc)}
            if out not in child_outputs:
                violations.append(
                    Violation(
                        node,
                        "internal",
                        f"χout={out!r} matches neither child "
                        f"({outputs.get(lc)!r}, {outputs.get(rc)!r})",
                    )
                )
        else:
            # Leaf or inconsistent: must echo the input color.
            if out != label.color:
                violations.append(
                    Violation(
                        node,
                        "echo-input",
                        f"non-internal node output {out!r} != χin "
                        f"{label.color!r}",
                    )
                )
        return violations


def reference_solution(instance: Instance) -> Dict[int, object]:
    """A canonical valid output, computed with full (global) information.

    Implements the Proposition 3.9 rule for every node: internal nodes copy
    the input color of their nearest descendant leaf, breaking ties toward
    the lexicographically least LC/RC path; all other nodes echo χin.  Used
    by tests as a known-good output and by benches as the D-VOL = O(n)
    upper-bound solver's expected answer.
    """
    topo = InstanceTopology(instance)
    n = max(2, instance.graph.num_nodes)
    limit = int(math.log2(n)) + 2
    outputs: Dict[int, object] = {}
    for node in instance.graph.nodes():
        if is_internal(topo, node):
            path = descendant_leaf_path(topo, node, limit)
            if path is None:  # pathological; fall back to input color
                outputs[node] = instance.label(node).color
            else:
                outputs[node] = instance.label(path[-1]).color
        else:
            outputs[node] = instance.label(node).color
    return outputs


def unique_solution_on_unanimous(instance: Instance) -> Optional[str]:
    """For instances whose leaves all share color χ0, the forced output.

    Proposition 3.12's induction: on a complete tree with unanimous leaf
    color χ0 the *unique* valid output is all-χ0.  Returns χ0, or None if
    the instance's leaves disagree.
    """
    topo = InstanceTopology(instance)
    leaf_colors = {
        instance.label(v).color
        for v in instance.graph.nodes()
        if classify(topo, v) != INTERNAL
    }
    if len(leaf_colors) == 1:
        return next(iter(leaf_colors))
    return None
