"""Hierarchical-or-hybrid 2½-coloring, HH-THC(k, ℓ) (Section 6.1, Def 6.4).

Every node carries a selector bit ``b_v``: bit-0 nodes must jointly solve
Hierarchical-THC(ℓ) on their induced subgraph G_0, bit-1 nodes solve
Hybrid-THC(k) on G_1.  For k ≤ ℓ the complexity is the max of the parts
(Theorem 6.5):

* R-DIST = D-DIST = Θ(n^{1/ℓ})    (from the hierarchical part),
* R-VOL = Θ̃(n^{1/k})             (from the hybrid part; n^{1/k} ≥ n^{1/ℓ}),
* D-VOL = Θ̃(n).

These are the family that populates Figure 3's general position: distance
n^{1/ℓ} with randomized volume n^{1/k} for any k ≤ ℓ.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graphs.labelings import Instance
from repro.graphs.tree_structure import Topology
from repro.lcl.base import LCLProblem, Violation
from repro.problems.hierarchical_thc import HierarchicalTHC
from repro.problems.hierarchical_thc import (
    reference_solution as hierarchical_reference,
)
from repro.problems.hybrid_thc import HybridTHC
from repro.problems.hybrid_thc import reference_solution as hybrid_reference
from repro.registry import register_problem


@register_problem("hh-thc(2,3)", defaults={"k": 2, "ell": 3})
class HHTHC(LCLProblem):
    """HH-THC(k, ℓ) (Definition 6.4): dispatch on the input bit."""

    def __init__(self, k: int, ell: int) -> None:
        if k > ell:
            raise ValueError("HH-THC requires k <= ell")
        self.k = k
        self.ell = ell
        self.name = f"hh-thc({k},{ell})"
        self._hierarchical = HierarchicalTHC(ell)
        self._hybrid = HybridTHC(k)
        self.checking_radius = max(
            self._hierarchical.checking_radius, self._hybrid.checking_radius
        )
        self.output_labels = ()

    def check_node(
        self,
        topology: Topology,
        node: int,
        outputs: Dict[int, object],
    ) -> List[Violation]:
        bit = topology.label(node).bit
        if bit == 0:
            # Hierarchical-THC(ℓ) "with the input level ignored": bit-0
            # nodes carry no explicit level, so Definition 5.1 levels apply.
            return self._hierarchical.check_node(topology, node, outputs)
        if bit == 1:
            return self._hybrid.check_node(topology, node, outputs)
        return [
            Violation(node, "input", f"node has no selector bit (b_v={bit!r})")
        ]


def reference_solution(instance: Instance, k: int, ell: int) -> Dict[int, object]:
    """Canonical valid output: solve each population with its reference."""
    hier = hierarchical_reference(_subinstance(instance, 0), ell)
    hyb = hybrid_reference(_subinstance(instance, 1), k)
    outputs: Dict[int, object] = {}
    outputs.update(hier)
    outputs.update(hyb)
    return outputs


def _subinstance(instance: Instance, bit: int) -> Instance:
    """The induced sub-instance of one population.

    HH instances are disjoint unions, so the induced subgraph is a union of
    whole components; we rebuild it as a standalone instance for the
    per-part reference solvers.
    """
    from repro.graphs.port_graph import PortGraph

    keep = {
        v for v in instance.graph.nodes() if instance.label(v).bit == bit
    }
    sub = PortGraph(max_degree=instance.graph.max_degree)
    for v in keep:
        sub.add_node(v)
    for edge in instance.graph.edges():
        if edge.u in keep and edge.v in keep:
            sub.add_edge(edge.u, edge.u_port, edge.v, edge.v_port)
    labeling = instance.labeling.copy()
    return Instance(
        graph=sub,
        labeling=labeling,
        n=len(keep),
        name=f"{instance.name}-bit{bit}",
    )
