"""Topology builders shared by all instance generators.

These construct :class:`~repro.graphs.port_graph.PortGraph` objects with the
port conventions the paper's proofs use (e.g. Proposition 3.12: parents on
port 1, children on ports 2 and 3, heap-ordered IDs on complete binary
trees; Proposition 4.9: lateral edges on ports 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graphs.port_graph import PortGraph

# Canonical port assignments (Propositions 3.12 / 4.9).
PORT_PARENT = 1
PORT_LEFT_CHILD = 2
PORT_RIGHT_CHILD = 3
PORT_LEFT_NEIGHBOR = 4
PORT_RIGHT_NEIGHBOR = 5
ROOT_PORT_LEFT_CHILD = 1
ROOT_PORT_RIGHT_CHILD = 2


@dataclass
class BinaryTreeTopology:
    """A complete binary tree plus the bookkeeping generators need.

    Nodes are heap-ordered: the root has ID ``root_id``, and node ``i``'s
    children are ``2i`` and ``2i + 1`` relative to a root at 1 (we keep the
    relative heap index in ``heap_index``).  ``levels[d]`` lists the IDs at
    depth ``d`` from left to right.
    """

    graph: PortGraph
    root: int
    depth: int
    levels: List[List[int]] = field(default_factory=list)
    parent_of: Dict[int, Optional[int]] = field(default_factory=dict)
    left_child_of: Dict[int, Optional[int]] = field(default_factory=dict)
    right_child_of: Dict[int, Optional[int]] = field(default_factory=dict)

    @property
    def leaves(self) -> List[int]:
        return self.levels[self.depth]

    @property
    def internal_nodes(self) -> List[int]:
        return [v for lvl in self.levels[: self.depth] for v in lvl]

    def child_port(self, v: int, which: str) -> int:
        """The port of ``v`` leading to its ``"left"``/``"right"`` child."""
        if v == self.root:
            return ROOT_PORT_LEFT_CHILD if which == "left" else ROOT_PORT_RIGHT_CHILD
        return PORT_LEFT_CHILD if which == "left" else PORT_RIGHT_CHILD


def complete_binary_tree(
    depth: int,
    max_degree: int = 3,
    first_id: int = 1,
) -> BinaryTreeTopology:
    """A complete binary tree of the given ``depth`` (so ``2^{d+1}-1`` nodes).

    Port convention (proof of Proposition 3.12): every non-root node's
    parent sits on port 1 and its children (if any) on ports 2 and 3; the
    root's children sit on ports 1 and 2.  IDs are heap-ordered starting at
    ``first_id``.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    graph = PortGraph(max_degree=max_degree)
    n = 2 ** (depth + 1) - 1
    ids = [first_id + i for i in range(n)]
    for node in ids:
        graph.add_node(node)

    levels: List[List[int]] = []
    offset = 0
    for d in range(depth + 1):
        width = 2**d
        levels.append(ids[offset : offset + width])
        offset += width

    topo = BinaryTreeTopology(graph=graph, root=ids[0], depth=depth, levels=levels)
    for node in ids:
        topo.parent_of[node] = None
        topo.left_child_of[node] = None
        topo.right_child_of[node] = None

    for d in range(depth):
        for i, v in enumerate(levels[d]):
            left = levels[d + 1][2 * i]
            right = levels[d + 1][2 * i + 1]
            lp = topo.child_port(v, "left")
            rp = topo.child_port(v, "right")
            graph.add_edge(v, lp, left, PORT_PARENT)
            graph.add_edge(v, rp, right, PORT_PARENT)
            topo.left_child_of[v] = left
            topo.right_child_of[v] = right
            topo.parent_of[left] = v
            topo.parent_of[right] = v
    return topo


def add_lateral_edges(topo: BinaryTreeTopology) -> None:
    """Add the per-depth lateral edges of Proposition 4.9.

    At each depth ``d``, consecutive nodes (left to right) are joined; the
    right node's port 4 leads left, the left node's port 5 leads right.
    Requires the graph's ``max_degree`` to be at least 5.
    """
    graph = topo.graph
    for row in topo.levels:
        for left, right in zip(row, row[1:]):
            graph.add_edge(left, PORT_RIGHT_NEIGHBOR, right, PORT_LEFT_NEIGHBOR)


def path_graph(n: int, first_id: int = 1, max_degree: int = 3) -> PortGraph:
    """A path on ``n`` nodes; port 1 points back, port 2 points forward."""
    if n < 1:
        raise ValueError("n must be >= 1")
    graph = PortGraph(max_degree=max_degree)
    ids = [first_id + i for i in range(n)]
    for node in ids:
        graph.add_node(node)
    for a, b in zip(ids, ids[1:]):
        graph.add_edge(a, 2 if a != ids[0] else 1, b, 1)
    return graph


def cycle_graph(n: int, first_id: int = 1, max_degree: int = 3) -> PortGraph:
    """A cycle on ``n >= 3`` nodes; port 1 = predecessor, port 2 = successor."""
    if n < 3:
        raise ValueError("cycles need n >= 3")
    graph = PortGraph(max_degree=max_degree)
    ids = [first_id + i for i in range(n)]
    for node in ids:
        graph.add_node(node)
    for i in range(n):
        a = ids[i]
        b = ids[(i + 1) % n]
        graph.add_edge(a, 2, b, 1)
    return graph


def two_trees_with_bridge(
    depth: int, max_degree: int = 3
) -> Tuple[PortGraph, BinaryTreeTopology, BinaryTreeTopology]:
    """Example 7.6: two depth-``depth`` complete binary trees, roots joined.

    The bridge occupies port 3 on both roots (their child ports are 1, 2).
    Returns the combined graph and both tree topologies (which share it).
    """
    left = complete_binary_tree(depth, max_degree=max_degree, first_id=1)
    n_left = left.graph.num_nodes
    right = complete_binary_tree(
        depth, max_degree=max_degree, first_id=n_left + 1
    )
    combined = PortGraph(max_degree=max_degree)
    for topo in (left, right):
        for node in topo.graph.nodes():
            combined.add_node(node)
    for topo in (left, right):
        for edge in topo.graph.edges():
            combined.add_edge(edge.u, edge.u_port, edge.v, edge.v_port)
    combined.add_edge(left.root, 3, right.root, 3)
    left.graph = combined
    right.graph = combined
    return combined, left, right
