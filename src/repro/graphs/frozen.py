"""Compiled read-only port graphs: the CSR fast path behind the oracles.

:class:`~repro.graphs.port_graph.PortGraph` is built for *construction*:
dict-of-dict port slots, lazy port reservation, adversarial incremental
growth.  Once an instance is finished, every probe-model experiment only
ever *reads* it — and reads it ``n x queries`` times, because the runner
executes the algorithm from all ``n`` start nodes.  That read path pays
dict hashing, ``_require_node`` try/except, and tuple unpacking on every
single port resolution.

:meth:`PortGraph.freeze` compiles the finished graph into a
:class:`FrozenPortGraph`: CSR-style flat arrays

* ``port_offsets`` — per-node slice boundaries into the port arrays
  (node ``i``'s ports live at ``port_offsets[i]:port_offsets[i+1]``),
* ``port_endpoints`` — the dense index of the neighbor behind each port
  (``-1`` for a dangling port),
* ``port_back_ports`` — the neighbor's port number for the same edge
  (``0`` for a dangling port),
* ``degrees`` — per-node connected-port counts,

plus an id <-> dense-index mapping (node ids are arbitrary ints; dense
indices are ``0..n-1`` in insertion order).  All queries are O(1) flat
indexing with no per-call allocation; the mutation API raises.  The query
surface mirrors :class:`PortGraph` exactly, so oracles and algorithms can
take either.

The four CSR columns are stored as ``array('q')`` buffers (or, for a
graph attached from a :mod:`multiprocessing.shared_memory` segment via
:meth:`FrozenPortGraph.from_csr`, as ``memoryview`` casts straight into
the shared buffer).  Both expose identical ``int``-per-index semantics;
the shared-memory layer (``repro.exec.shm``) relies on the columns being
contiguous 64-bit signed integers it can copy — or map — byte-for-byte.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.graphs.port_graph import (
    GraphTraversalMixin,
    PortEdge,
    PortGraph,
    PortGraphError,
)


class FrozenPortGraph(GraphTraversalMixin):
    """An immutable, CSR-packed snapshot of a :class:`PortGraph`.

    Build one via :meth:`PortGraph.freeze` (freezing a frozen graph
    returns it unchanged).  Node ids, port numbers, degrees, edges and
    traversal results are identical to the source graph's; only the
    storage layout and the query cost change.
    """

    __slots__ = (
        "_max_degree",
        "_ids",
        "_index",
        "port_offsets",
        "port_endpoints",
        "port_back_ports",
        "degrees",
        "_num_edges",
        "meta",
    )

    def __init__(
        self,
        max_degree: int,
        ports: Dict[int, Dict[int, Optional[Tuple[int, int]]]],
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self._max_degree = max_degree
        # Snapshot of the source graph's annotations; preserved by
        # thaw(), so a freeze() -> thaw() round trip is lossless
        # (structure *and* metadata, e.g. disjointness coordinate maps).
        self.meta: Dict[str, object] = dict(meta or {})
        ids: List[int] = list(ports)
        index: Dict[int, int] = {nid: i for i, nid in enumerate(ids)}
        offsets: List[int] = [0] * (len(ids) + 1)
        endpoints: List[int] = []
        back_ports: List[int] = []
        degrees: List[int] = [0] * len(ids)
        connected = 0
        for i, nid in enumerate(ids):
            slots = ports[nid]
            num_ports = len(slots)
            offsets[i + 1] = offsets[i] + num_ports
            degree = 0
            for port in range(1, num_ports + 1):
                if port not in slots:
                    raise PortGraphError(
                        f"node {nid} has non-contiguous ports "
                        f"{sorted(slots)}; cannot freeze"
                    )
                entry = slots[port]
                if entry is None:
                    endpoints.append(-1)
                    back_ports.append(0)
                else:
                    endpoints.append(index[entry[0]])
                    back_ports.append(entry[1])
                    degree += 1
            degrees[i] = degree
            connected += degree
        self._ids = ids
        self._index = index
        self.port_offsets = array("q", offsets)
        self.port_endpoints = array("q", endpoints)
        self.port_back_ports = array("q", back_ports)
        self.degrees = array("q", degrees)
        self._num_edges = connected // 2

    @classmethod
    def from_csr(
        cls,
        max_degree: int,
        ids: Sequence[int],
        offsets: Sequence[int],
        endpoints: Sequence[int],
        back_ports: Sequence[int],
        degrees: Sequence[int],
        num_edges: int,
        meta: Optional[Dict[str, object]] = None,
    ) -> "FrozenPortGraph":
        """Wrap already-packed CSR columns without copying or validating.

        This is the zero-copy attachment path: the column arguments may be
        ``memoryview`` casts into a shared-memory segment (they are stored
        as-is), so a worker process can serve queries straight out of the
        publisher's buffer.  The caller vouches that the columns came from
        a real :class:`FrozenPortGraph` (``repro.exec.shm`` publishes them
        byte-for-byte); only the id -> dense-index map is rebuilt here.
        """
        self = cls.__new__(cls)
        self._max_degree = max_degree
        self.meta = dict(meta or {})
        self._ids = list(ids)
        self._index = {nid: i for i, nid in enumerate(self._ids)}
        self.port_offsets = offsets
        self.port_endpoints = endpoints
        self.port_back_ports = back_ports
        self.degrees = degrees
        self._num_edges = num_edges
        return self

    # ------------------------------------------------------------------
    # construction API: a frozen graph refuses all of it
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, num_ports: int = 0) -> int:
        raise PortGraphError("cannot add_node to a FrozenPortGraph")

    def reserve_port(self, node_id: int, port: int) -> None:
        raise PortGraphError("cannot reserve_port on a FrozenPortGraph")

    def add_edge(self, u: int, u_port: int, v: int, v_port: int) -> None:
        raise PortGraphError("cannot add_edge to a FrozenPortGraph")

    def freeze(self) -> "FrozenPortGraph":
        """Freezing an already-frozen graph is the identity."""
        return self

    def thaw(self) -> PortGraph:
        """An independent mutable :class:`PortGraph` with the same structure.

        Metadata (``meta``) is carried along, so ``freeze()`` → ``thaw()``
        → ``freeze()`` round trips lose nothing.
        """
        clone = PortGraph(self._max_degree)
        clone.meta = dict(self.meta)
        for nid in self._ids:
            clone.add_node(nid, self.num_ports(nid))
        for edge in self.edges():
            clone.add_edge(edge.u, edge.u_port, edge.v, edge.v_port)
        return clone

    # ------------------------------------------------------------------
    # queries (same surface and semantics as PortGraph)
    # ------------------------------------------------------------------
    @property
    def max_degree(self) -> int:
        return self._max_degree

    @property
    def num_nodes(self) -> int:
        return len(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._index

    def nodes(self) -> Iterator[int]:
        return iter(self._ids)

    def has_node(self, node_id: int) -> bool:
        return node_id in self._index

    def num_ports(self, node_id: int) -> int:
        i = self._require(node_id)
        return self.port_offsets[i + 1] - self.port_offsets[i]

    def degree(self, node_id: int) -> int:
        return self.degrees[self._require(node_id)]

    def neighbor_at(self, node_id: int, port: int) -> Optional[int]:
        i = self._require(node_id)
        base = self.port_offsets[i]
        if port < 1 or base + port > self.port_offsets[i + 1]:
            raise PortGraphError(f"node {node_id} has no port {port}")
        endpoint = self.port_endpoints[base + port - 1]
        return None if endpoint < 0 else self._ids[endpoint]

    def endpoint_port(self, node_id: int, port: int) -> Optional[int]:
        i = self._require(node_id)
        base = self.port_offsets[i]
        if port < 1 or base + port > self.port_offsets[i + 1]:
            raise PortGraphError(f"node {node_id} has no port {port}")
        if self.port_endpoints[base + port - 1] < 0:
            return None
        return self.port_back_ports[base + port - 1]

    def port_to(self, node_id: int, neighbor_id: int) -> Optional[int]:
        i = self._require(node_id)
        target = self._index.get(neighbor_id)
        if target is None:
            return None
        base = self.port_offsets[i]
        for offset in range(base, self.port_offsets[i + 1]):
            if self.port_endpoints[offset] == target:
                return offset - base + 1
        return None

    def neighbors(self, node_id: int) -> List[int]:
        i = self._require(node_id)
        ids = self._ids
        return [
            ids[e]
            for e in self.port_endpoints[
                self.port_offsets[i] : self.port_offsets[i + 1]
            ]
            if e >= 0
        ]

    def dangling_ports(self, node_id: int) -> List[int]:
        i = self._require(node_id)
        base = self.port_offsets[i]
        return [
            offset - base + 1
            for offset in range(base, self.port_offsets[i + 1])
            if self.port_endpoints[offset] < 0
        ]

    def edges(self) -> Iterator[PortEdge]:
        ids = self._ids
        offsets = self.port_offsets
        endpoints = self.port_endpoints
        back_ports = self.port_back_ports
        for i, u in enumerate(ids):
            base = offsets[i]
            for offset in range(base, offsets[i + 1]):
                e = endpoints[offset]
                if e >= 0 and u < ids[e]:
                    yield PortEdge(
                        u, ids[e], offset - base + 1, back_ports[offset]
                    )

    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------
    # traversal (bfs_distances / ball / connected_components /
    # to_networkx inherited from GraphTraversalMixin)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-check the PortGraph invariants on the packed arrays."""
        for i, nid in enumerate(self._ids):
            base = self.port_offsets[i]
            num_ports = self.port_offsets[i + 1] - base
            if num_ports > self._max_degree:
                raise PortGraphError(f"node {nid} exceeds max degree")
            seen_neighbors = set()
            for port in range(1, num_ports + 1):
                e = self.port_endpoints[base + port - 1]
                if e < 0:
                    continue
                nbr = self._ids[e]
                if nbr in seen_neighbors:
                    raise PortGraphError(f"parallel edges at node {nid}")
                seen_neighbors.add(nbr)
                back_port = self.port_back_ports[base + port - 1]
                if (
                    self.neighbor_at(nbr, back_port) != nid
                    or self.endpoint_port(nbr, back_port) != port
                ):
                    raise PortGraphError(
                        f"asymmetric edge: {nid}:{port} -> {nbr}:{back_port}"
                    )

    def copy(self) -> "FrozenPortGraph":
        """Frozen graphs are immutable; copy is the identity."""
        return self

    # ------------------------------------------------------------------
    def dense_index(self, node_id: int) -> int:
        """The dense CSR index of ``node_id`` (for flat-array consumers)."""
        return self._require(node_id)

    def node_ids(self) -> List[int]:
        """Node ids in dense-index order (a copy)."""
        return list(self._ids)

    def _require(self, node_id: int) -> int:
        try:
            return self._index[node_id]
        except KeyError:
            raise PortGraphError(f"unknown node {node_id}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenPortGraph(n={self.num_nodes}, m={self._num_edges}, "
            f"max_degree={self._max_degree})"
        )
