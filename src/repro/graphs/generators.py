"""Instance generators for every problem family in the paper.

Each generator returns an :class:`~repro.graphs.labelings.Instance`; the
``meta`` dict records construction facts that benches and lower-bound
harnesses rely on (e.g. which leaves encode which disjointness coordinate).

The families implemented here are exactly the ones the paper's proofs use:

* complete-binary-tree LeafColoring instances, including the Proposition
  3.12 hard distribution (internal nodes red, all leaves one random color);
* random pseudo-tree instances, optionally with the single G_T cycle that
  Observation 3.7 allows, and optionally corrupted (inconsistent nodes);
* globally compatible BalancedTree instances (Definition 4.2) and the
  Figure 5 / Proposition 4.9 disjointness embedding;
* balanced Hierarchical-THC(k) instances with Θ(n^{1/k}) backbones (the
  shape used by the Proposition 5.13 lower bound);
* Hybrid-THC(k) instances whose level-1 components are BalancedTree
  instances (Section 6), and HH-THC(k, ℓ) two-population instances (§6.1);
* the Example 7.6 relay graph (two trees joined by one bridge edge); and
* cycles for the classic problems of Figures 1–2.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.graphs.builders import (
    PORT_LEFT_CHILD,
    PORT_LEFT_NEIGHBOR,
    PORT_PARENT,
    PORT_RIGHT_CHILD,
    PORT_RIGHT_NEIGHBOR,
    BinaryTreeTopology,
    add_lateral_edges,
    complete_binary_tree,
    cycle_graph,
    two_trees_with_bridge,
)
from repro.graphs.labelings import (
    COLORS,
    RED,
    Instance,
    Labeling,
    NodeLabel,
)
from repro.graphs.port_graph import PortGraph


def _rng(rng: Optional[random.Random], seed: int = 0) -> random.Random:
    return rng if rng is not None else random.Random(seed)


# ----------------------------------------------------------------------
# tree labelings on complete binary trees
# ----------------------------------------------------------------------
def tree_labeling_for(topo: BinaryTreeTopology) -> Labeling:
    """The canonical tree labeling matching a built binary tree topology."""
    labeling = Labeling()
    for node in topo.graph.nodes():
        label = NodeLabel()
        if topo.parent_of.get(node) is not None:
            label.parent = PORT_PARENT
        if topo.left_child_of.get(node) is not None:
            label.left_child = topo.child_port(node, "left")
            label.right_child = topo.child_port(node, "right")
        labeling[node] = label
    return labeling


def leaf_coloring_instance(
    depth: int,
    leaf_color: Optional[str] = None,
    internal_color: str = RED,
    rng: Optional[random.Random] = None,
) -> Instance:
    """A complete-binary-tree LeafColoring instance.

    ``leaf_color=None`` colors each leaf independently at random; a fixed
    color gives the unanimous-leaf instances of Proposition 3.12.
    """
    rnd = _rng(rng)
    topo = complete_binary_tree(depth)
    labeling = tree_labeling_for(topo)
    for node in topo.graph.nodes():
        if node in set(topo.leaves):
            labeling[node].color = (
                leaf_color if leaf_color is not None else rnd.choice(COLORS)
            )
        else:
            labeling[node].color = internal_color
    return Instance(
        graph=topo.graph,
        labeling=labeling,
        name=f"leaf-coloring-complete-d{depth}",
        meta={"depth": depth, "root": topo.root, "leaves": list(topo.leaves)},
    )


def hard_leaf_coloring_instance(
    depth: int, rng: Optional[random.Random] = None
) -> Instance:
    """One draw from the Proposition 3.12 hard distribution.

    All internal nodes are red; every leaf carries the *same* uniformly
    random color χ0.  The unique valid output colors every node χ0.
    """
    rnd = _rng(rng)
    chi0 = rnd.choice(COLORS)
    inst = leaf_coloring_instance(depth, leaf_color=chi0, internal_color=RED)
    inst.name = f"leaf-coloring-hard-d{depth}"
    inst.meta["chi0"] = chi0
    return inst


def random_tree_instance(
    target_size: int,
    rng: Optional[random.Random] = None,
    branch_probability: float = 0.7,
    with_cycle: bool = False,
    cycle_length: int = 0,
    max_degree: int = 3,
) -> Instance:
    """A random binary pseudo-tree LeafColoring instance.

    Grows a random binary tree toward ``target_size`` nodes (each frontier
    node becomes internal with ``branch_probability`` while budget remains).
    With ``with_cycle`` the root is replaced by a directed G_T cycle of
    ``cycle_length`` internal nodes linked parent→RC around the ring, each
    hanging a random subtree from its LC — the one-cycle-per-component shape
    Observation 3.7 allows and ``RWtoLeaf`` must cope with (Section 3).
    """
    rnd = _rng(rng)
    graph = PortGraph(max_degree=max_degree)
    labeling = Labeling()
    next_id = [1]

    def new_node() -> int:
        node = next_id[0]
        next_id[0] += 1
        graph.add_node(node)
        labeling[node] = NodeLabel(color=rnd.choice(COLORS))
        return node

    budget = [target_size]
    pending: List[int] = []  # internal-candidate frontier

    def grow(node: int) -> None:
        """Decide whether ``node`` becomes internal; if so add children.

        Branching is forced while the tree is small so that a random draw
        cannot extinguish growth long before ``target_size`` is reached.
        """
        force = next_id[0] - 1 < max(3, target_size // 3)
        if budget[0] >= 2 and (force or rnd.random() < branch_probability):
            left = new_node()
            right = new_node()
            budget[0] -= 2
            graph.add_edge(node, _lc_port(node), left, PORT_PARENT)
            graph.add_edge(node, _rc_port(node), right, PORT_PARENT)
            labeling[node].left_child = _lc_port(node)
            labeling[node].right_child = _rc_port(node)
            labeling[left].parent = PORT_PARENT
            labeling[right].parent = PORT_PARENT
            pending.append(left)
            pending.append(right)

    def _lc_port(node: int) -> int:
        return (
            1
            if labeling[node].parent is None and cycle_members.get(node) is None
            else PORT_LEFT_CHILD
        )

    def _rc_port(node: int) -> int:
        return (
            2
            if labeling[node].parent is None and cycle_members.get(node) is None
            else PORT_RIGHT_CHILD
        )

    cycle_members: Dict[int, bool] = {}
    if with_cycle:
        length = max(3, cycle_length or max(3, target_size // 8))
        ring = [new_node() for _ in range(length)]
        budget[0] -= length
        for i, v in enumerate(ring):
            cycle_members[v] = True
        for i, v in enumerate(ring):
            nxt = ring[(i + 1) % len(ring)]
            # v's RC is the next ring node; the next ring node's parent is v.
            graph.add_edge(v, PORT_RIGHT_CHILD, nxt, PORT_PARENT)
            labeling[v].right_child = PORT_RIGHT_CHILD
            labeling[nxt].parent = PORT_PARENT
        for v in ring:
            # Hang a subtree root from each ring node's LC so it is internal.
            child = new_node()
            budget[0] -= 1
            graph.add_edge(v, PORT_LEFT_CHILD, child, PORT_PARENT)
            labeling[v].left_child = PORT_LEFT_CHILD
            labeling[child].parent = PORT_PARENT
            pending.append(child)
    else:
        root = new_node()
        budget[0] -= 1
        pending.append(root)

    while pending:
        node = pending.pop(0)
        grow(node)

    return Instance(
        graph=graph,
        labeling=labeling,
        name=f"leaf-coloring-random-{graph.num_nodes}",
        meta={"with_cycle": with_cycle},
    )


def corrupt_instance(
    instance: Instance,
    fraction: float,
    rng: Optional[random.Random] = None,
) -> Instance:
    """Return a copy with a random ``fraction`` of labels mangled.

    Mangling re-points one of the tree-label ports of a node to a random
    value (possibly ⊥), creating inconsistent nodes; validity conditions for
    leaves/inconsistent nodes (e.g. Definition 3.4's first condition) then
    become exercised.
    """
    rnd = _rng(rng)
    labeling = instance.labeling.copy()
    nodes = list(instance.graph.nodes())
    k = max(1, int(len(nodes) * fraction))
    for node in rnd.sample(nodes, min(k, len(nodes))):
        label = labeling[node]
        which = rnd.choice(("parent", "left_child", "right_child"))
        value = rnd.choice([None, 1, 2, 3])
        setattr(label, which, value)
    return Instance(
        graph=instance.graph,
        labeling=labeling,
        n=instance.n,
        name=instance.name + "-corrupted",
        meta=dict(instance.meta, corrupted=True),
    )


# ----------------------------------------------------------------------
# BalancedTree instances (Section 4)
# ----------------------------------------------------------------------
def _balanced_labeling(topo: BinaryTreeTopology) -> Labeling:
    """Tree labeling plus fully compatible LN/RN lateral labels (Def 4.2)."""
    labeling = tree_labeling_for(topo)
    for row in topo.levels:
        for i, node in enumerate(row):
            if i > 0:
                labeling[node].left_neighbor = PORT_LEFT_NEIGHBOR
            if i + 1 < len(row):
                labeling[node].right_neighbor = PORT_RIGHT_NEIGHBOR
    return labeling


def balanced_tree_instance(
    depth: int,
    compatible: bool = True,
    rng: Optional[random.Random] = None,
    break_count: int = 1,
) -> Instance:
    """A BalancedTree instance on a complete binary tree with lateral edges.

    With ``compatible=True`` the labeling is globally compatible, so the
    unique valid output has every consistent node answering (B, P(v))
    (Lemma 4.7).  Otherwise ``break_count`` random non-root nodes get a
    lateral label erased, making them incompatible.
    """
    rnd = _rng(rng)
    topo = complete_binary_tree(depth, max_degree=5)
    add_lateral_edges(topo)
    labeling = _balanced_labeling(topo)
    broken: List[int] = []
    if not compatible:
        candidates = [v for row in topo.levels[1:] for v in row[1:]]
        for node in rnd.sample(candidates, min(break_count, len(candidates))):
            labeling[node].left_neighbor = None
            broken.append(node)
    return Instance(
        graph=topo.graph,
        labeling=labeling,
        name=f"balanced-tree-d{depth}-{'ok' if compatible else 'broken'}",
        meta={
            "depth": depth,
            "root": topo.root,
            "broken": broken,
            "leaves": list(topo.leaves),
        },
    )


def disjointness_embedding(
    a: Sequence[int], b: Sequence[int]
) -> Instance:
    """The Proposition 4.9 / Figure 5 embedding E(a, b) of disjointness.

    ``a`` and ``b`` are 0/1 vectors of length N = 2^{k-1} for some k ≥ 1.
    All labels are independent of (a, b) except at the leaves: leaf pair
    (u_i, w_i) is laterally linked by labels iff NOT (a_i = b_i = 1).  The
    labeling is globally compatible iff disj(a, b) = 1.

    ``meta`` records, for every leaf, which coordinate it encodes and
    whether Alice's a_i / Bob's b_i is needed to answer a query for it —
    this is what the two-party simulation of Theorem 2.9 charges for.
    """
    if len(a) != len(b):
        raise ValueError("a and b must have equal length")
    n_pairs = len(a)
    if n_pairs < 1 or n_pairs & (n_pairs - 1):
        raise ValueError("length must be a power of two")
    depth = n_pairs.bit_length()  # N = 2^{depth-1}
    topo = complete_binary_tree(depth, max_degree=5)
    add_lateral_edges(topo)
    labeling = _balanced_labeling(topo)

    leaves = topo.leaves
    coordinate_of: Dict[int, int] = {}
    for i in range(n_pairs):
        u_i = leaves[2 * i]
        w_i = leaves[2 * i + 1]
        coordinate_of[u_i] = i
        coordinate_of[w_i] = i
        if a[i] == 1 and b[i] == 1:
            labeling[u_i].right_neighbor = None
            labeling[w_i].left_neighbor = None
        else:
            labeling[u_i].right_neighbor = PORT_RIGHT_NEIGHBOR
            labeling[w_i].left_neighbor = PORT_LEFT_NEIGHBOR
        # The w_i <-> u_{i+1} links are input-independent and already set by
        # _balanced_labeling; the chain ends (LN(u_1), RN(w_N)) are ⊥.
    labeling[leaves[0]].left_neighbor = None
    labeling[leaves[-1]].right_neighbor = None

    disj = 1 if all(x * y == 0 for x, y in zip(a, b)) else 0
    # The coordinate map also rides on the graph itself: graph-level meta
    # survives freeze()/thaw() (compilation into the CSR fast path), so
    # the embedding stays chargeable even when only the graph travels.
    topo.graph.meta["coordinate_of"] = coordinate_of
    topo.graph.meta["root"] = topo.root
    return Instance(
        graph=topo.graph,
        labeling=labeling,
        name=f"disjointness-N{n_pairs}",
        meta={
            "depth": depth,
            "root": topo.root,
            "coordinate_of": coordinate_of,
            "a": list(a),
            "b": list(b),
            "disjoint": disj,
            "leaves": list(leaves),
        },
    )


# ----------------------------------------------------------------------
# Hierarchical-THC(k) instances (Section 5)
# ----------------------------------------------------------------------
def hierarchical_thc_instance(
    k: int,
    backbone_length: int,
    rng: Optional[random.Random] = None,
    explicit_levels: bool = False,
    max_degree: int = 5,
    lengths: Optional[Sequence[int]] = None,
) -> Instance:
    """A balanced Hierarchical-THC(k) instance.

    Every backbone (maximal same-level component of G_k) is a path; each
    node of a level-ℓ ≥ 2 backbone hangs a full level-(ℓ−1) component from
    its RC port.  By default every backbone has ``backbone_length`` nodes;
    with m = backbone_length the instance has Θ(m^k) nodes, so
    m = Θ(n^{1/k}) — exactly the balanced shape the Proposition 5.13 lower
    bound uses.

    ``lengths`` (indexed by level − 1) overrides the per-level backbone
    lengths, which is how tests and benches build *deep* components
    (longer than 2n^{1/k}, Definition 5.10): e.g. ``lengths=[m, 8*m]``
    makes the top level deep (exercising waypoints and exemption), while
    ``lengths=[8*m, m]`` makes level-1 components deep (forcing declines).

    ``explicit_levels`` stamps each node's level into its input label
    (needed when this construction is reused inside Hybrid/HH instances).
    """
    rnd = _rng(rng)
    if k < 1:
        raise ValueError("k must be >= 1")
    if backbone_length < 1:
        raise ValueError("backbone_length must be >= 1")
    if lengths is not None and len(lengths) != k:
        raise ValueError("lengths must have one entry per level")
    per_level = (
        [backbone_length] * k if lengths is None else [int(x) for x in lengths]
    )
    if any(x < 1 for x in per_level):
        raise ValueError("all backbone lengths must be >= 1")
    graph = PortGraph(max_degree=max_degree)
    labeling = Labeling()
    next_id = [1]

    def new_node(level: int) -> int:
        node = next_id[0]
        next_id[0] += 1
        graph.add_node(node)
        label = NodeLabel(color=rnd.choice(COLORS))
        if explicit_levels:
            label.level = level
        labeling[node] = label
        return node

    def build_component(level: int) -> int:
        """Build one level-``level`` component; return its backbone root."""
        backbone = [new_node(level) for _ in range(per_level[level - 1])]
        for prev, nxt in zip(backbone, backbone[1:]):
            graph.add_edge(prev, PORT_LEFT_CHILD, nxt, PORT_PARENT)
            labeling[prev].left_child = PORT_LEFT_CHILD
            labeling[nxt].parent = PORT_PARENT
        if level >= 2:
            for node in backbone:
                child_root = build_component(level - 1)
                graph.add_edge(node, PORT_RIGHT_CHILD, child_root, PORT_PARENT)
                labeling[node].right_child = PORT_RIGHT_CHILD
                labeling[child_root].parent = PORT_PARENT
        return backbone[0]

    root = build_component(k)
    return Instance(
        graph=graph,
        labeling=labeling,
        name=f"hierarchical-thc-k{k}-m{backbone_length}",
        meta={
            "k": k,
            "backbone_length": backbone_length,
            "lengths": per_level,
            "root": root,
        },
    )


# ----------------------------------------------------------------------
# Hybrid-THC(k) and HH-THC(k, ℓ) instances (Section 6)
# ----------------------------------------------------------------------
def hybrid_thc_instance(
    k: int,
    backbone_length: int,
    bt_depth: int,
    rng: Optional[random.Random] = None,
    compatible: bool = True,
    lengths: Optional[Sequence[int]] = None,
) -> Instance:
    """A Hybrid-THC(k) instance (Definition 6.1).

    Levels 2..k form THC backbones exactly as in
    :func:`hierarchical_thc_instance`; each level-2 node hangs a complete
    BalancedTree instance of depth ``bt_depth`` (all of whose nodes carry
    explicit level 1).  With ``compatible=False`` each BalancedTree gets one
    broken lateral label, so level-1 components must output (U, ·) — which
    is still a solved instance for the level-2 exemption rule.
    """
    rnd = _rng(rng)
    if k < 2:
        raise ValueError("Hybrid-THC needs k >= 2")
    if lengths is not None and len(lengths) != k - 1:
        raise ValueError("lengths must cover levels 2..k")
    per_level = (
        [backbone_length] * (k - 1)
        if lengths is None
        else [int(x) for x in lengths]
    )
    graph = PortGraph(max_degree=5)
    labeling = Labeling()
    next_id = [1]

    def new_node(level: int) -> int:
        node = next_id[0]
        next_id[0] += 1
        graph.add_node(node)
        labeling[node] = NodeLabel(color=rnd.choice(COLORS), level=level)
        return node

    bt_roots: List[int] = []

    def build_balanced_tree() -> int:
        """A complete BalancedTree component; returns its root."""
        depth = bt_depth
        rows: List[List[int]] = []
        for d in range(depth + 1):
            rows.append([new_node(1) for _ in range(2**d)])
        for d in range(depth):
            for i, v in enumerate(rows[d]):
                left = rows[d + 1][2 * i]
                right = rows[d + 1][2 * i + 1]
                graph.add_edge(v, PORT_LEFT_CHILD, left, PORT_PARENT)
                graph.add_edge(v, PORT_RIGHT_CHILD, right, PORT_PARENT)
                labeling[v].left_child = PORT_LEFT_CHILD
                labeling[v].right_child = PORT_RIGHT_CHILD
                labeling[left].parent = PORT_PARENT
                labeling[right].parent = PORT_PARENT
        for row in rows:
            for left, right in zip(row, row[1:]):
                graph.add_edge(
                    left, PORT_RIGHT_NEIGHBOR, right, PORT_LEFT_NEIGHBOR
                )
                labeling[left].right_neighbor = PORT_RIGHT_NEIGHBOR
                labeling[right].left_neighbor = PORT_LEFT_NEIGHBOR
        if not compatible:
            victim = rnd.choice(rows[-1][1:])
            labeling[victim].left_neighbor = None
        bt_roots.append(rows[0][0])
        return rows[0][0]

    def build_component(level: int) -> int:
        if level == 1:
            return build_balanced_tree()
        backbone = [new_node(level) for _ in range(per_level[level - 2])]
        for prev, nxt in zip(backbone, backbone[1:]):
            graph.add_edge(prev, PORT_LEFT_CHILD, nxt, PORT_PARENT)
            labeling[prev].left_child = PORT_LEFT_CHILD
            labeling[nxt].parent = PORT_PARENT
        for node in backbone:
            child_root = build_component(level - 1)
            graph.add_edge(node, PORT_RIGHT_CHILD, child_root, PORT_PARENT)
            labeling[node].right_child = PORT_RIGHT_CHILD
            labeling[child_root].parent = PORT_PARENT
        return backbone[0]

    root = build_component(k)
    return Instance(
        graph=graph,
        labeling=labeling,
        name=f"hybrid-thc-k{k}-m{backbone_length}-d{bt_depth}",
        meta={
            "k": k,
            "backbone_length": backbone_length,
            "bt_depth": bt_depth,
            "root": root,
            "bt_roots": bt_roots,
        },
    )


def hh_thc_instance(
    k: int,
    ell: int,
    hierarchical_backbone: int,
    hybrid_backbone: int,
    bt_depth: int,
    rng: Optional[random.Random] = None,
) -> Instance:
    """An HH-THC(k, ℓ) instance (Definition 6.4): two disjoint populations.

    Nodes with bit 0 form a Hierarchical-THC(ℓ) instance; nodes with bit 1
    form a Hybrid-THC(k) instance.  (Definition 6.4 only constrains the two
    induced subgraphs, so a disjoint union exercises both validity clauses.)
    """
    rnd = _rng(rng)
    part0 = hierarchical_thc_instance(
        ell, hierarchical_backbone, rng=rnd, explicit_levels=False
    )
    part1 = hybrid_thc_instance(k, hybrid_backbone, bt_depth, rng=rnd)
    graph = PortGraph(max_degree=5)
    labeling = Labeling()
    offset = max(part0.graph.nodes()) if part0.graph.num_nodes else 0
    for node in part0.graph.nodes():
        graph.add_node(node)
        label = part0.label(node).copy()
        label.bit = 0
        labeling[node] = label
    for edge in part0.graph.edges():
        graph.add_edge(edge.u, edge.u_port, edge.v, edge.v_port)
    remap = {node: node + offset for node in part1.graph.nodes()}
    for node in part1.graph.nodes():
        graph.add_node(remap[node])
        label = part1.label(node).copy()
        label.bit = 1
        labeling[remap[node]] = label
    for edge in part1.graph.edges():
        graph.add_edge(remap[edge.u], edge.u_port, remap[edge.v], edge.v_port)
    return Instance(
        graph=graph,
        labeling=labeling,
        name=f"hh-thc-k{k}-l{ell}",
        meta={
            "k": k,
            "ell": ell,
            "hierarchical_root": part0.meta["root"],
            "hybrid_root": remap[part1.meta["root"]],
            "part0_nodes": part0.graph.num_nodes,
            "part1_nodes": part1.graph.num_nodes,
        },
    )


# ----------------------------------------------------------------------
# Example 7.6 relay instance and classic-problem instances
# ----------------------------------------------------------------------
def relay_instance(
    depth: int, rng: Optional[random.Random] = None
) -> Instance:
    """The Example 7.6 graph: two depth-``depth`` trees joined at the roots.

    Each right-tree leaf ``v_i`` holds an input bit; the problem asks the
    i-th left-tree leaf ``u_i`` to output that bit.  ``meta['pairing']``
    maps each left leaf to its partner right leaf.
    """
    rnd = _rng(rng)
    graph, left, right = two_trees_with_bridge(depth)
    labeling = Labeling()
    for node in graph.nodes():
        labeling[node] = NodeLabel()
    bits: Dict[int, int] = {}
    pairing: Dict[int, int] = {}
    for u_leaf, v_leaf in zip(left.leaves, right.leaves):
        bit = rnd.randint(0, 1)
        labeling[v_leaf].bit = bit
        bits[v_leaf] = bit
        pairing[u_leaf] = v_leaf
    return Instance(
        graph=graph,
        labeling=labeling,
        name=f"relay-d{depth}",
        meta={
            "depth": depth,
            "left_root": left.root,
            "right_root": right.root,
            "left_leaves": list(left.leaves),
            "right_leaves": list(right.leaves),
            "pairing": pairing,
            "bits": bits,
        },
    )


def perturbed_leaf_coloring_instance(
    depth: int,
    defect_rate: float,
    rng: Optional[random.Random] = None,
) -> Instance:
    """A Proposition 3.12 gadget with a controlled leaf defect rate.

    Starts from the unanimous-leaf hard instance (internal nodes red,
    every leaf colored χ0) and recolors ``max(1, defect_rate · #leaves)``
    randomly chosen leaves to a uniformly random *different* color —
    ``defect_rate=0`` keeps the pristine gadget.  The result is a general
    (non-promise) LeafColoring input whose leaf distribution sits a
    controlled distance from the worst case, so randomized-solver sweeps
    can chart how success probability and walk volume degrade as the
    promise breaks down.
    """
    if not 0.0 <= defect_rate <= 1.0:
        raise ValueError("defect_rate must be in [0, 1]")
    rnd = _rng(rng)
    inst = hard_leaf_coloring_instance(depth, rng=rnd)
    leaves = list(inst.meta["leaves"])
    chi0 = inst.meta["chi0"]
    defects = 0 if defect_rate == 0.0 else max(
        1, int(round(defect_rate * len(leaves)))
    )
    defective: List[int] = []
    for leaf in rnd.sample(leaves, min(defects, len(leaves))):
        inst.labeling[leaf].color = rnd.choice(
            [c for c in COLORS if c != chi0]
        )
        defective.append(leaf)
    inst.name = f"leaf-coloring-perturbed-d{depth}-r{defect_rate:g}"
    inst.meta["defect_rate"] = defect_rate
    inst.meta["defective_leaves"] = defective
    return inst


def random_regular_instance(
    n: int,
    degree: int = 3,
    rng: Optional[random.Random] = None,
    max_attempts: int = 1000,
) -> Instance:
    """A simple random ``degree``-regular port graph on ``n`` nodes.

    Configuration model with rejection: every node gets ``degree`` stubs,
    the stub list is shuffled and paired sequentially, and the draw is
    rejected (and redrawn from the same RNG stream) if any pairing forms
    a self-loop or a parallel edge — so the result is uniform over simple
    regular multigraph-free pairings and fully determined by the RNG.
    Ports are assigned in pairing order (1..degree per node).  The labels
    are empty: these instances feed the class-A specimen problems
    (``constant``, ``degree-parity``), which read only the topology.
    """
    if n < degree + 1:
        raise ValueError("need n >= degree + 1 for a simple regular graph")
    if (n * degree) % 2:
        raise ValueError("n * degree must be even")
    rnd = _rng(rng)
    for _ in range(max_attempts):
        stubs = [v for v in range(1, n + 1) for _ in range(degree)]
        rnd.shuffle(stubs)
        pairs = [
            (stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)
        ]
        if any(u == v for u, v in pairs):
            continue
        seen = set()
        simple = True
        for u, v in pairs:
            key = (u, v) if u < v else (v, u)
            if key in seen:
                simple = False
                break
            seen.add(key)
        if not simple:
            continue
        graph = PortGraph(max_degree=degree)
        for node in range(1, n + 1):
            graph.add_node(node)
        next_port = {node: 1 for node in range(1, n + 1)}
        for u, v in pairs:
            graph.add_edge(u, next_port[u], v, next_port[v])
            next_port[u] += 1
            next_port[v] += 1
        labeling = Labeling()
        for node in graph.nodes():
            labeling[node] = NodeLabel()
        return Instance(
            graph=graph,
            labeling=labeling,
            name=f"random-regular-n{n}-d{degree}",
            meta={"n": n, "degree": degree},
        )
    raise RuntimeError(
        f"no simple {degree}-regular pairing found on {n} nodes after "
        f"{max_attempts} attempts"
    )


def cycle_instance(
    n: int,
    rng: Optional[random.Random] = None,
    shuffle_ids: bool = True,
) -> Instance:
    """A cycle instance for the classic problems (3-coloring, MIS, ...).

    ``shuffle_ids`` draws the identifiers from a polynomial range in random
    order, which is what makes Cole–Vishkin's Θ(log* n) bound meaningful.
    """
    rnd = _rng(rng)
    graph = cycle_graph(n)
    if shuffle_ids:
        universe = rnd.sample(range(1, 4 * n + 1), n)
        remap = dict(zip(sorted(graph.nodes()), universe))
        shuffled = PortGraph(max_degree=graph.max_degree)
        for node in graph.nodes():
            shuffled.add_node(remap[node])
        for edge in graph.edges():
            shuffled.add_edge(
                remap[edge.u], edge.u_port, remap[edge.v], edge.v_port
            )
        graph = shuffled
    labeling = Labeling()
    for node in graph.nodes():
        labeling[node] = NodeLabel()
    return Instance(
        graph=graph,
        labeling=labeling,
        name=f"cycle-{n}",
        meta={"n": n},
    )
