"""Tree-labeling structure: consistency, G_T, levels, and the forest G_k.

This module implements the structural machinery of the paper:

* Definition 3.3 — classification of nodes as **internal**, **leaf** or
  **inconsistent** with respect to a tree labeling.
* Observation 3.7 — the directed pseudo-forest ``G_T`` spanned by consistent
  nodes, with edges from internal parents to their children.
* Lemma 3.8 — every internal node has a descendant leaf within ``log n``
  hops (we expose the witness path).
* Definitions 5.1 / 5.2 — node **levels** (following right-child chains) and
  the **hierarchical forest** ``G_k`` with its per-level backbones.

Everything is written against the tiny :class:`Topology` protocol so the
*same* predicate code is reused in two very different settings:

1. instance-level analysis (validity checkers, generators, tests), via
   :class:`InstanceTopology`, where lookups are free; and
2. probe algorithms, via ``repro.model.views.ProbeTopology``, where every
   resolution of a port issues a chargeable ``query`` (Section 2.2).

This matters because the paper repeatedly observes (e.g. Observation 5.3)
that these predicates are computable from O(1)- or O(k)-radius views; using
one implementation guarantees our algorithms check exactly what the
checkers check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Set

from repro.graphs.labelings import Instance, NodeLabel

INTERNAL = "internal"
LEAF = "leaf"
INCONSISTENT = "inconsistent"


class Topology(Protocol):
    """Minimal node/port access used by all structure predicates."""

    def label(self, node_id: int) -> NodeLabel:
        """The input label of ``node_id``."""

    def node_at(self, node_id: int, port: Optional[int]) -> Optional[int]:
        """The node reached from ``node_id`` via ``port``.

        Returns ``None`` when ``port`` is ``None`` (⊥) or dangling.
        """


class InstanceTopology:
    """Instance-backed :class:`Topology` with free lookups."""

    def __init__(self, instance: Instance) -> None:
        self._instance = instance

    def label(self, node_id: int) -> NodeLabel:
        return self._instance.label(node_id)

    def node_at(self, node_id: int, port: Optional[int]) -> Optional[int]:
        if port is None:
            return None
        graph = self._instance.graph
        if not graph.has_node(node_id):
            return None
        if port < 1 or port > graph.num_ports(node_id):
            return None
        return graph.neighbor_at(node_id, port)


# ----------------------------------------------------------------------
# Definition 3.3: internal / leaf / inconsistent
# ----------------------------------------------------------------------
def parent_node(t: Topology, v: int) -> Optional[int]:
    """The node reached via ``P(v)`` (Notation 3.2), or None for ⊥."""
    return t.node_at(v, t.label(v).parent)


def left_child_node(t: Topology, v: int) -> Optional[int]:
    """The node reached via ``LC(v)``, or None for ⊥."""
    return t.node_at(v, t.label(v).left_child)


def right_child_node(t: Topology, v: int) -> Optional[int]:
    """The node reached via ``RC(v)``, or None for ⊥."""
    return t.node_at(v, t.label(v).right_child)


def is_internal(t: Topology, v: int) -> bool:
    """Definition 3.3: ``v`` is internal.

    Requires reciprocated left/right children, distinct child ports, and a
    parent port distinct from both child ports.
    """
    lab = t.label(v)
    if lab.left_child is None or lab.right_child is None:
        return False
    if lab.right_child == lab.left_child:
        return False
    if lab.parent is not None and lab.parent in (lab.left_child, lab.right_child):
        return False
    lc = t.node_at(v, lab.left_child)
    if lc is None or parent_node(t, lc) != v:
        return False
    rc = t.node_at(v, lab.right_child)
    if rc is None or parent_node(t, rc) != v:
        return False
    return True


def is_leaf(t: Topology, v: int) -> bool:
    """Definition 3.3: not internal, and the parent exists and is internal."""
    if is_internal(t, v):
        return False
    p = parent_node(t, v)
    return p is not None and is_internal(t, p)


def is_consistent(t: Topology, v: int) -> bool:
    return is_internal(t, v) or is_leaf(t, v)


def classify(t: Topology, v: int) -> str:
    """Return one of :data:`INTERNAL`, :data:`LEAF`, :data:`INCONSISTENT`."""
    if is_internal(t, v):
        return INTERNAL
    p = parent_node(t, v)
    if p is not None and is_internal(t, p):
        return LEAF
    return INCONSISTENT


def classify_all(instance: Instance) -> Dict[int, str]:
    """Classification of every node of a concrete instance."""
    t = InstanceTopology(instance)
    return {v: classify(t, v) for v in instance.graph.nodes()}


# ----------------------------------------------------------------------
# Observation 3.7: the directed pseudo-forest G_T
# ----------------------------------------------------------------------
@dataclass
class GTStructure:
    """The directed graph ``G_T`` of Observation 3.7 for a concrete instance.

    ``children[u]`` lists all consistent ``v`` whose parent resolves to the
    internal node ``u`` (the formal edge set ``E_T``); ``parent[v]`` is the
    unique in-neighbor, if any.  On well-formed inputs internal nodes have
    exactly the out-neighbors ``{LC(u), RC(u)}``.
    """

    status: Dict[int, str]
    children: Dict[int, List[int]]
    parent: Dict[int, Optional[int]]

    def nodes(self) -> List[int]:
        return [v for v, s in self.status.items() if s != INCONSISTENT]

    def out_degree(self, v: int) -> int:
        return len(self.children.get(v, []))

    def in_degree(self, v: int) -> int:
        return 1 if self.parent.get(v) is not None else 0


def derive_gt(instance: Instance) -> GTStructure:
    """Compute ``G_T`` (Observation 3.7) for a concrete instance."""
    t = InstanceTopology(instance)
    status = classify_all(instance)
    children: Dict[int, List[int]] = {v: [] for v in instance.graph.nodes()}
    parent: Dict[int, Optional[int]] = {v: None for v in instance.graph.nodes()}
    for v, s in status.items():
        if s == INCONSISTENT:
            continue
        p = parent_node(t, v)
        if p is not None and status.get(p) == INTERNAL:
            children[p].append(v)
            parent[v] = p
    return GTStructure(status=status, children=children, parent=parent)


def descendant_leaf_path(t: Topology, v: int, limit: int) -> Optional[List[int]]:
    """A shortest-first witness for Lemma 3.8.

    Performs a BFS from the internal node ``v`` following LC/RC child edges
    of ``G_T`` and returns the node path to the nearest leaf, preferring the
    lexicographically least LC/RC sequence among nearest leaves (the Prop 3.9
    tie-break).  Returns None if no leaf is found within ``limit`` hops.
    """
    if not is_internal(t, v):
        return None
    # BFS layer by layer; within a layer, expansion order encodes the
    # lexicographic (LC-before-RC) preference.
    frontier: List[List[int]] = [[v]]
    seen: Set[int] = {v}
    for _ in range(limit):
        next_frontier: List[List[int]] = []
        for path in frontier:
            u = path[-1]
            for child in (left_child_node(t, u), right_child_node(t, u)):
                if child is None or child in seen:
                    continue
                seen.add(child)
                child_path = path + [child]
                if is_leaf(t, child):
                    return child_path
                if is_internal(t, child):
                    next_frontier.append(child_path)
        if not next_frontier:
            return None
        frontier = next_frontier
    return None


# ----------------------------------------------------------------------
# Definitions 5.1 / 5.2: levels and the hierarchical forest G_k
# ----------------------------------------------------------------------
def level_of(t: Topology, v: int, cap: int) -> int:
    """Definition 5.1 level of ``v``, computed by following the RC chain.

    Levels above ``cap`` are reported as ``cap + 1`` (such nodes are exempt
    by validity condition 1 of Definition 5.5).  The computation touches at
    most ``cap + 1`` nodes, matching Observation 5.3.

    A node whose explicit input level is set (Hybrid-THC, Definition 6.1)
    reports that instead.
    """
    explicit = t.label(v).level
    if explicit is not None:
        return min(explicit, cap + 1)
    current = v
    for lvl in range(1, cap + 1):
        rc = right_child_node(t, current)
        if rc is None:
            return lvl
        current = rc
    return cap + 1


def is_level_root(t: Topology, v: int) -> bool:
    """Definition 5.2: ``P(v) = ⊥`` or ``v = RC(P(v))``."""
    p = parent_node(t, v)
    if p is None:
        return True
    return right_child_node(t, p) == v


def is_level_leaf(t: Topology, v: int) -> bool:
    """Definition 5.2: ``LC(v) = ⊥`` (no backbone successor)."""
    return left_child_node(t, v) is None


def backbone_next(t: Topology, v: int, cap: int) -> Optional[int]:
    """The G_k successor of ``v`` along its level backbone.

    This is ``u = LC(v)`` when the edge is reciprocated (``P(u) = v``) and
    ``level(u) = level(v)`` (first bullet of Definition 5.1's edge rule).
    """
    u = left_child_node(t, v)
    if u is None:
        return None
    if parent_node(t, u) != v:
        return None
    if level_of(t, u, cap) != level_of(t, v, cap):
        return None
    return u


def backbone_prev(t: Topology, v: int, cap: int) -> Optional[int]:
    """The G_k predecessor of ``v`` along its level backbone (if any)."""
    p = parent_node(t, v)
    if p is None:
        return None
    if left_child_node(t, p) != v:
        return None
    if level_of(t, p, cap) != level_of(t, v, cap):
        return None
    return p


def hung_subtree_root(t: Topology, v: int, cap: int) -> Optional[int]:
    """The level-(ℓ−1) root hung below ``v`` via its RC edge in G_k.

    This is ``u = RC(v)`` when reciprocated and ``level(v) = level(u) + 1``
    (second bullet of Definition 5.1's edge rule).
    """
    u = right_child_node(t, v)
    if u is None:
        return None
    if parent_node(t, u) != v:
        return None
    if level_of(t, u, cap) + 1 != level_of(t, v, cap):
        return None
    return u


@dataclass
class Backbone:
    """One maximal same-level component of G_k (a path or a cycle).

    Observation 5.4: every such component is a directed path or cycle along
    LC edges.  For a path, ``nodes`` runs root-to-leaf; for a cycle the
    rotation starts at the minimum-ID node.
    """

    nodes: List[int]
    is_cycle: bool
    level: int

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def leaf(self) -> Optional[int]:
        """The level-ℓ leaf (path end), or None for a cycle."""
        return None if self.is_cycle else self.nodes[-1]

    @property
    def root(self) -> Optional[int]:
        """The level-ℓ root (path start), or None for a cycle."""
        return None if self.is_cycle else self.nodes[0]


def backbone_of(
    t: Topology, v: int, cap: int, limit: Optional[int] = None
) -> Backbone:
    """The maximal level backbone through ``v``, walked in both directions.

    ``limit`` truncates the walk after that many *steps in each direction*
    (probe algorithms use this to stay within their budget; the truncated
    object is then only a segment, not the maximal component).
    """
    lvl = level_of(t, v, cap)
    forward: List[int] = [v]
    seen: Set[int] = {v}
    steps = 0
    current = v
    is_cycle = False
    while True:
        nxt = backbone_next(t, current, cap)
        if nxt is None:
            break
        if nxt in seen:
            is_cycle = True
            break
        forward.append(nxt)
        seen.add(nxt)
        current = nxt
        steps += 1
        if limit is not None and steps >= limit:
            break
    if is_cycle and forward[0] == v and backbone_prev(t, v, cap) == forward[-1]:
        # Completed a full cycle through v.
        rotation = min(range(len(forward)), key=lambda i: forward[i])
        nodes = forward[rotation:] + forward[:rotation]
        return Backbone(nodes=nodes, is_cycle=True, level=lvl)
    backward: List[int] = []
    current = v
    steps = 0
    while True:
        prev = backbone_prev(t, current, cap)
        if prev is None or prev in seen:
            if prev is not None and prev in seen:
                is_cycle = True
            break
        backward.append(prev)
        seen.add(prev)
        current = prev
        steps += 1
        if limit is not None and steps >= limit:
            break
    nodes = list(reversed(backward)) + forward
    return Backbone(nodes=nodes, is_cycle=is_cycle, level=lvl)


def hierarchy_subtree_size(
    instance: Instance, root: int, cap: int
) -> int:
    """Size of the G_k component hanging at-or-below ``root``'s backbone.

    Matches Definition 5.10's ``H_ℓ``: the backbone through ``root``
    together with all descendants at lower levels.  Used to classify
    components as light (≤ n^{ℓ/k}) or heavy.
    """
    t = InstanceTopology(instance)
    backbone = backbone_of(t, root, cap)
    total = 0
    stack = list(backbone.nodes)
    seen: Set[int] = set(backbone.nodes)
    while stack:
        u = stack.pop()
        total += 1
        child = hung_subtree_root(t, u, cap)
        if child is not None and child not in seen:
            sub = backbone_of(t, child, cap)
            for w in sub.nodes:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
    return total


def all_backbones(instance: Instance, cap: int) -> List[Backbone]:
    """All maximal backbones of G_k for a concrete instance."""
    t = InstanceTopology(instance)
    seen: Set[int] = set()
    result: List[Backbone] = []
    for v in instance.graph.nodes():
        if v in seen:
            continue
        bb = backbone_of(t, v, cap)
        seen.update(bb.nodes)
        result.append(bb)
    return result
