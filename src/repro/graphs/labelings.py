"""Input labelings for the paper's LCL constructions.

The paper layers progressively richer input labels on top of a port graph:

* Definition 3.1 — a **(binary) tree labeling** gives every node a parent
  port ``P(v)``, a left-child port ``LC(v)`` and a right-child port
  ``RC(v)``, each drawn from ``[Δ] ∪ {⊥}``; a **colored tree labeling** adds
  an input color ``χin(v) ∈ {R, B}``.
* Definition 4.1 — a **balanced tree labeling** adds lateral left/right
  neighbor ports ``LN(v)``, ``RN(v)``.
* Definition 6.1 — Hybrid-THC additionally gives each node an explicit
  ``level(v) ∈ [k+1]``, and Definition 6.4 (HH-THC) adds a bit ``b_v``.

We represent ``⊥`` as ``None`` and keep one uniform :class:`NodeLabel`
record with optional fields, so a single :class:`Labeling` type carries any
of the above (problems simply ignore fields they do not use).  This mirrors
the paper's convention that an input labeling bundles the identifiers, the
port ordering and "any additional input required for the graph problem".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional

# The two input colors of Definition 3.1 and the two extra output symbols of
# Definition 5.5 ("decline" and "exempt").
RED = "R"
BLUE = "B"
DECLINE = "D"
EXEMPT = "X"
COLORS = (RED, BLUE)
THC_OUTPUTS = (RED, BLUE, DECLINE, EXEMPT)

# BalancedTree output symbols (Definition 4.3).
BALANCED = "B"
UNBALANCED = "U"


def other_color(color: str) -> str:
    """The color in {R, B} that is not ``color``."""
    if color == RED:
        return BLUE
    if color == BLUE:
        return RED
    raise ValueError(f"not an input color: {color!r}")


@dataclass
class NodeLabel:
    """The input label ``L(v)`` of a single node.

    All port-valued fields hold a port number (int ≥ 1) or ``None`` for ⊥.

    Attributes
    ----------
    parent, left_child, right_child:
        The tree labeling of Definition 3.1.
    color:
        ``χin(v)`` of a colored tree labeling (``"R"`` / ``"B"``).
    left_neighbor, right_neighbor:
        ``LN(v)`` / ``RN(v)`` of a balanced tree labeling (Definition 4.1).
    level:
        The explicit level of Hybrid-THC inputs (Definition 6.1).
    bit:
        The selector bit ``b_v`` of HH-THC inputs (Definition 6.4).
    """

    parent: Optional[int] = None
    left_child: Optional[int] = None
    right_child: Optional[int] = None
    color: Optional[str] = None
    left_neighbor: Optional[int] = None
    right_neighbor: Optional[int] = None
    level: Optional[int] = None
    bit: Optional[int] = None

    def copy(self) -> "NodeLabel":
        return replace(self)


class Labeling:
    """A map from node id to :class:`NodeLabel`.

    Missing nodes read as an empty label (all fields ⊥), which matches how
    the constructions treat nodes that carry no tree structure.
    """

    def __init__(self, labels: Optional[Dict[int, NodeLabel]] = None) -> None:
        self._labels: Dict[int, NodeLabel] = dict(labels or {})

    def __getitem__(self, node_id: int) -> NodeLabel:
        label = self._labels.get(node_id)
        if label is None:
            label = NodeLabel()
            self._labels[node_id] = label
        return label

    def get(self, node_id: int) -> NodeLabel:
        """Read-only access: returns an empty label without inserting it."""
        return self._labels.get(node_id, NodeLabel())

    def __setitem__(self, node_id: int, label: NodeLabel) -> None:
        self._labels[node_id] = label

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def nodes(self) -> Iterator[int]:
        return iter(self._labels)

    def copy(self) -> "Labeling":
        return Labeling({n: lab.copy() for n, lab in self._labels.items()})


@dataclass
class Instance:
    """A labeled graph: the full input to a graph problem (Definition 2.4).

    ``n`` is the number of nodes, which the model provides to every
    algorithm (Section 2.1: "we assume that n ... is provided as input to
    every algorithm").  For adversarially grown instances ``n`` is the
    *target* size announced up front.
    """

    graph: "PortGraph"
    labeling: Labeling
    n: int = 0
    name: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n == 0:
            self.n = self.graph.num_nodes

    def label(self, node_id: int) -> NodeLabel:
        return self.labeling.get(node_id)


# Re-export for type checkers without creating an import cycle at runtime.
from repro.graphs.port_graph import PortGraph  # noqa: E402  (intentional)
