"""Port-numbered bounded-degree graphs (paper Section 2.1).

The paper's model works on undirected graphs of maximum degree at most a
fixed constant ``Delta`` where every node carries a unique identifier and a
*port ordering*: for each node ``v`` and incident ordered edge ``(v, w)``
there is a port number ``p(v, w)`` in ``[deg(v)]`` such that ``p`` restricted
to ``v`` is a bijection onto ``{1, ..., deg(v)}``.  An algorithm may then
speak unambiguously of "v's i-th neighbor".

:class:`PortGraph` stores exactly this structure.  It is deliberately a plain
adjacency structure with no labels; input labelings live in
:mod:`repro.graphs.labelings` so that the same topology can carry many
labelings (as the lower-bound constructions require).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graphs.frozen import FrozenPortGraph


class PortGraphError(ValueError):
    """Raised when a construction step would violate port-graph invariants."""


@dataclass(frozen=True)
class PortEdge:
    """One ordered edge ``(u, v)`` together with its two port numbers.

    ``u_port`` is ``p(u, v)`` and ``v_port`` is ``p(v, u)``.
    """

    u: int
    v: int
    u_port: int
    v_port: int

    def reversed(self) -> "PortEdge":
        """The same undirected edge viewed from the other endpoint."""
        return PortEdge(self.v, self.u, self.v_port, self.u_port)


class GraphTraversalMixin:
    """Traversals shared by :class:`PortGraph` and ``FrozenPortGraph``.

    Everything here is defined purely in terms of the common query
    surface (``nodes`` / ``neighbors`` / ``has_node``), so both the
    mutable and the CSR-frozen representation get identical semantics
    from one implementation.
    """

    __slots__ = ()  # keep FrozenPortGraph dict-free

    def bfs_distances(
        self, source: int, max_distance: Optional[int] = None
    ) -> Dict[int, int]:
        """BFS distances from ``source``, optionally truncated at a radius."""
        if not self.has_node(source):
            raise PortGraphError(f"unknown node {source}")
        dist = {source: 0}
        frontier = [source]
        d = 0
        while frontier:
            if max_distance is not None and d >= max_distance:
                break
            nxt: List[int] = []
            for u in frontier:
                for w in self.neighbors(u):
                    if w not in dist:
                        dist[w] = d + 1
                        nxt.append(w)
            frontier = nxt
            d += 1
        return dist

    def ball(self, source: int, radius: int) -> List[int]:
        """All nodes within distance ``radius`` of ``source``."""
        return sorted(self.bfs_distances(source, max_distance=radius))

    def connected_components(self) -> List[List[int]]:
        seen: set = set()
        components: List[List[int]] = []
        for start in self.nodes():
            if start in seen:
                continue
            comp = sorted(self.bfs_distances(start))
            seen.update(comp)
            components.append(comp)
        return components

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (used for cross-checks in tests)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.nodes())
        g.add_edges_from((e.u, e.v) for e in self.edges())
        return g


class PortGraph(GraphTraversalMixin):
    """An undirected graph with unique node IDs and per-node port numbering.

    Ports are 1-based, matching the paper's ``[deg(v)]`` convention.  A node
    may be created with a number of *reserved* ports larger than its current
    degree; unassigned ports read as "dangling" (no neighbor yet).  This is
    essential for the adversarial lower-bound processes of Propositions 3.13
    and 5.20, which grow trees lazily and only later decide what (if
    anything) hangs off each port.

    Parameters
    ----------
    max_degree:
        The global degree bound Δ.  Adding more ports than Δ raises.
    """

    def __init__(self, max_degree: int = 3) -> None:
        if max_degree < 1:
            raise PortGraphError(f"max_degree must be >= 1, got {max_degree}")
        self._max_degree = max_degree
        # Free-form graph-level annotations (e.g. the disjointness
        # embedding's coordinate map).  Preserved across freeze()/thaw()
        # and copy(), so structural metadata survives compilation into
        # the CSR fast path and back.
        self.meta: Dict[str, object] = {}
        # node id -> port number -> (neighbor id, neighbor's port) or None
        self._ports: Dict[int, Dict[int, Optional[Tuple[int, int]]]] = {}
        # Incrementally maintained mirrors of the port table, so degree(),
        # num_edges() and the parallel-edge check are O(1) instead of
        # scanning ports (edges are never removed, only added).
        self._degrees: Dict[int, int] = {}
        self._neighbor_sets: Dict[int, Set[int]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, num_ports: int = 0) -> int:
        """Add a node with ``num_ports`` reserved (initially dangling) ports."""
        if node_id in self._ports:
            raise PortGraphError(f"duplicate node id {node_id}")
        if num_ports < 0 or num_ports > self._max_degree:
            raise PortGraphError(
                f"num_ports {num_ports} out of range [0, {self._max_degree}]"
            )
        self._ports[node_id] = {p: None for p in range(1, num_ports + 1)}
        self._degrees[node_id] = 0
        self._neighbor_sets[node_id] = set()
        return node_id

    def reserve_port(self, node_id: int, port: int) -> None:
        """Ensure ``port`` exists (dangling) on ``node_id``.

        Ports between the current maximum and ``port`` are also created so
        that port numbers stay contiguous.
        """
        slots = self._require_node(node_id)
        if port < 1 or port > self._max_degree:
            raise PortGraphError(
                f"port {port} out of range [1, {self._max_degree}]"
            )
        for p in range(1, port + 1):
            slots.setdefault(p, None)

    def add_edge(self, u: int, u_port: int, v: int, v_port: int) -> None:
        """Connect ``u``'s port ``u_port`` with ``v``'s port ``v_port``."""
        if u == v:
            raise PortGraphError(f"self-loops are not allowed (node {u})")
        self.reserve_port(u, u_port)
        self.reserve_port(v, v_port)
        if self._ports[u][u_port] is not None:
            raise PortGraphError(f"port {u_port} of node {u} already connected")
        if self._ports[v][v_port] is not None:
            raise PortGraphError(f"port {v_port} of node {v} already connected")
        if v in self._neighbor_sets[u]:
            raise PortGraphError(f"parallel edge between {u} and {v}")
        self._ports[u][u_port] = (v, v_port)
        self._ports[v][v_port] = (u, u_port)
        self._neighbor_sets[u].add(v)
        self._neighbor_sets[v].add(u)
        self._degrees[u] += 1
        self._degrees[v] += 1
        self._num_edges += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def max_degree(self) -> int:
        return self._max_degree

    @property
    def num_nodes(self) -> int:
        return len(self._ports)

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._ports

    def nodes(self) -> Iterator[int]:
        return iter(self._ports)

    def has_node(self, node_id: int) -> bool:
        return node_id in self._ports

    def num_ports(self, node_id: int) -> int:
        """Number of reserved ports (connected or dangling)."""
        return len(self._require_node(node_id))

    def degree(self, node_id: int) -> int:
        """Number of *connected* ports, i.e. the graph-theoretic degree."""
        try:
            return self._degrees[node_id]
        except KeyError:
            raise PortGraphError(f"unknown node {node_id}") from None

    def neighbor_at(self, node_id: int, port: int) -> Optional[int]:
        """The neighbor reached through ``port``, or ``None`` if dangling."""
        slots = self._require_node(node_id)
        if port not in slots:
            raise PortGraphError(f"node {node_id} has no port {port}")
        entry = slots[port]
        return None if entry is None else entry[0]

    def endpoint_port(self, node_id: int, port: int) -> Optional[int]:
        """The *neighbor's* port number for the edge through ``port``."""
        slots = self._require_node(node_id)
        if port not in slots:
            raise PortGraphError(f"node {node_id} has no port {port}")
        entry = slots[port]
        return None if entry is None else entry[1]

    def port_to(self, node_id: int, neighbor_id: int) -> Optional[int]:
        """The port of ``node_id`` leading to ``neighbor_id`` (None if absent)."""
        for port, entry in self._require_node(node_id).items():
            if entry is not None and entry[0] == neighbor_id:
                return port
        return None

    def neighbors(self, node_id: int) -> List[int]:
        """Connected neighbors of ``node_id`` in port order."""
        return [nbr for nbr, _ in self._connected(node_id)]

    def dangling_ports(self, node_id: int) -> List[int]:
        """Reserved but unconnected ports, in increasing order."""
        return sorted(
            p for p, entry in self._require_node(node_id).items() if entry is None
        )

    def edges(self) -> Iterator[PortEdge]:
        """Each undirected edge once, from the lower-id endpoint."""
        for u, slots in self._ports.items():
            for u_port, entry in slots.items():
                if entry is None:
                    continue
                v, v_port = entry
                if u < v:
                    yield PortEdge(u, v, u_port, v_port)

    def num_edges(self) -> int:
        return self._num_edges

    def freeze(self) -> "FrozenPortGraph":
        """Compile this graph into a read-only CSR :class:`FrozenPortGraph`.

        The frozen snapshot is independent: later mutations of this graph
        do not show through.  See :mod:`repro.graphs.frozen`.
        """
        from repro.graphs.frozen import FrozenPortGraph

        return FrozenPortGraph(self._max_degree, self._ports, meta=self.meta)

    # ------------------------------------------------------------------
    # algorithms (bfs_distances / ball / connected_components inherited
    # from GraphTraversalMixin)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all structural invariants; raise :class:`PortGraphError`."""
        for node, slots in self._ports.items():
            ports = sorted(slots)
            if ports != list(range(1, len(ports) + 1)):
                raise PortGraphError(f"node {node} has non-contiguous ports {ports}")
            if len(ports) > self._max_degree:
                raise PortGraphError(f"node {node} exceeds max degree")
            seen_neighbors = set()
            for port, entry in slots.items():
                if entry is None:
                    continue
                nbr, nbr_port = entry
                if nbr not in self._ports:
                    raise PortGraphError(f"edge from {node} to unknown node {nbr}")
                if nbr in seen_neighbors:
                    raise PortGraphError(f"parallel edges at node {node}")
                seen_neighbors.add(nbr)
                back = self._ports[nbr].get(nbr_port)
                if back != (node, port):
                    raise PortGraphError(
                        f"asymmetric edge: {node}:{port} -> {nbr}:{nbr_port}"
                    )

    def copy(self) -> "PortGraph":
        clone = PortGraph(self._max_degree)
        clone.meta = dict(self.meta)
        clone._ports = {n: dict(slots) for n, slots in self._ports.items()}
        clone._degrees = dict(self._degrees)
        clone._neighbor_sets = {n: set(s) for n, s in self._neighbor_sets.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _require_node(self, node_id: int) -> Dict[int, Optional[Tuple[int, int]]]:
        try:
            return self._ports[node_id]
        except KeyError:
            raise PortGraphError(f"unknown node {node_id}") from None

    def _connected(self, node_id: int) -> Iterator[Tuple[int, int]]:
        for port in sorted(self._require_node(node_id)):
            entry = self._ports[node_id][port]
            if entry is not None:
                yield entry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PortGraph(n={self.num_nodes}, m={self.num_edges()}, "
            f"max_degree={self._max_degree})"
        )
