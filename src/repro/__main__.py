"""``python -m repro`` — entry point for the repro CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
